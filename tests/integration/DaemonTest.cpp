//===- tests/integration/DaemonTest.cpp -----------------------------------==//
//
// End-to-end coverage of the fleet ingest daemon. The in-process tests
// drive IngestServer directly: concurrent socket submissions with
// backpressure, drop-directory ingestion, duplicate/malformed/oversize
// handling, snapshot-based restart, and -- the property everything hangs
// on -- fleet estimates bit-identical to a single-process pass over the
// same traces. The subprocess test exercises the real racedetectd binary
// (path injected as PACER_RACEDETECTD by the build) through its full
// crash story: SIGKILL mid-ingest, restart, recovery, exactly-once
// resubmission, and a final snapshot equal to the in-process reference.
//
//===----------------------------------------------------------------------===//

#include "runtime/IngestServer.h"

#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

using namespace pacer;
namespace fs = std::filesystem;

namespace {

/// Fresh per-test scratch directory.
std::string scratchDir(const char *Name) {
  std::string Dir = ::testing::TempDir() + "/pacer_daemon_" + Name;
  std::error_code Ec;
  fs::remove_all(Dir, Ec);
  fs::create_directories(Dir, Ec);
  return Dir;
}

const CompiledWorkload &testWorkload() {
  static CompiledWorkload Workload(tinyTestWorkload());
  return Workload;
}

/// Writes the workload's trace for \p Seed as a binary v2 file.
std::string writeTraceFor(const std::string &Dir, uint64_t Seed) {
  std::string Path = Dir + "/run-" + std::to_string(Seed) + ".btrace";
  Trace T = generateTrace(testWorkload(), Seed);
  EXPECT_TRUE(writeTraceFileBinary(Path, T));
  return Path;
}

/// The daemon configuration the tests share: PACER at a half rate (so the
/// sampling controller and the fleet-rate inversion are both live), a
/// small queue (so 64 concurrent submissions actually block on
/// backpressure), and a snapshot after every commit.
IngestServer::Config baseConfig(const std::string &Dir) {
  IngestServer::Config Config;
  Config.SpoolDir = Dir + "/spool";
  Config.SnapshotPath = Dir + "/fleet.snap";
  Config.Setup = pacerSetup(0.5);
  Config.Setup.Sampling.PeriodBytes = 16 * 1024;
  Config.Seed = 5;
  Config.QueueCapacity = 8;
  Config.AnalysisWorkers = 4;
  return Config;
}

/// What the daemon must equal: a sequential in-process pass folding every
/// trace into one aggregator at the fleet rate, using the exact request
/// the daemon's workers build.
FleetAggregator referenceOver(const IngestServer::Config &Config,
                              const std::vector<std::string> &TracePaths) {
  FleetAggregator Agg(Config.Setup.SamplingRate);
  for (const std::string &Path : TracePaths) {
    AnalysisRequest Request;
    Request.Setup = Config.Setup;
    Request.Seed = Config.Seed;
    Request.Stream = true;
    Request.StreamWindow = Config.StreamWindow;
    Request.CollectReports = true;
    AnalysisResult Result =
        AnalysisSession(flatSiteWorkload(), Request).analyzeFile(Path);
    EXPECT_TRUE(Result.Ok) << Path << ": " << Result.Error;
    Agg.addInstance(Result.Races, Result.SampleReports,
                    /*EffectiveRate=*/-1.0);
  }
  return Agg;
}

ingest::SubmitResult submitTcp(int Port, const std::string &TracePath,
                               const std::string &Id) {
  std::string Error;
  Socket S = Socket::connectTcp(Port, Error);
  if (!S.valid()) {
    ingest::SubmitResult R;
    R.Message = Error;
    return R;
  }
  return ingest::submitFile(S, TracePath, Id);
}

TEST(DaemonTest, SixtyFourConcurrentSubmissionsMatchInProcessRun) {
  std::string Dir = scratchDir("concurrent");
  IngestServer::Config Config = baseConfig(Dir);
  Config.TcpPort = 0;

  IngestServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;
  const int Port = Server.tcpPort();
  ASSERT_GT(Port, 0);

  // Four distinct traces, each submitted 16 times under distinct ids:
  // 64 concurrent clients against a queue of 8 -- most of them spend
  // time blocked on backpressure, none may be lost.
  std::vector<std::string> TracePaths;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed)
    TracePaths.push_back(writeTraceFor(Dir, Seed));

  std::atomic<int> CommitFailures{0};
  std::vector<std::thread> Clients;
  for (int Client = 0; Client < 64; ++Client) {
    Clients.emplace_back([&, Client] {
      ingest::SubmitResult R =
          submitTcp(Port, TracePaths[Client % 4],
                    "client-" + std::to_string(Client));
      if (!R.Ok || R.Code != ingest::Status::Committed)
        ++CommitFailures;
    });
  }
  for (std::thread &T : Clients)
    T.join();
  EXPECT_EQ(CommitFailures.load(), 0);

  IngestServer::Counters Counters = Server.counters();
  EXPECT_EQ(Counters.Received, 64u);
  EXPECT_EQ(Counters.Committed, 64u);
  EXPECT_EQ(Counters.Duplicates, 0u);

  // Bit-identical to the single-process pass, regardless of the order
  // the 64 commits landed in.
  std::vector<std::string> AllRuns;
  for (int Client = 0; Client < 64; ++Client)
    AllRuns.push_back(TracePaths[Client % 4]);
  EXPECT_EQ(Server.aggregatorCopy().serialize(),
            referenceOver(Config, AllRuns).serialize());
  Server.stop();
}

TEST(DaemonTest, DuplicateIdsCommitExactlyOnce) {
  std::string Dir = scratchDir("dup");
  IngestServer::Config Config = baseConfig(Dir);
  Config.UnixSocketPath = Dir + "/d.sock";

  IngestServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;
  std::string TracePath = writeTraceFor(Dir, 7);

  for (int Attempt = 0; Attempt < 3; ++Attempt) {
    Socket S = Socket::connectUnix(Config.UnixSocketPath, Error);
    ASSERT_TRUE(S.valid()) << Error;
    ingest::SubmitResult R = ingest::submitFile(S, TracePath, "same-id");
    ASSERT_TRUE(R.Ok) << R.Message;
    EXPECT_EQ(R.Code, Attempt == 0 ? ingest::Status::Committed
                                   : ingest::Status::Duplicate);
  }
  EXPECT_EQ(Server.counters().Committed, 1u);
  EXPECT_EQ(Server.counters().Duplicates, 2u);
  EXPECT_EQ(Server.aggregatorCopy().instanceCount(), 1u);
  Server.stop();
}

TEST(DaemonTest, RejectsMalformedAndOversizeAndKeepsServing) {
  std::string Dir = scratchDir("reject");
  IngestServer::Config Config = baseConfig(Dir);
  Config.TcpPort = 0;
  // Above the ~74 KiB test traces, below the oversize probe.
  Config.MaxSubmissionBytes = 128 * 1024;

  IngestServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;
  const int Port = Server.tcpPort();

  // Garbage bytes: spooled, analyzed, rejected -- connection stays sane.
  std::string Garbage = Dir + "/garbage.trace";
  std::FILE *Out = std::fopen(Garbage.c_str(), "wb");
  ASSERT_NE(Out, nullptr);
  std::fputs("this is not a trace\n", Out);
  std::fclose(Out);
  ingest::SubmitResult R = submitTcp(Port, Garbage, "bad-1");
  ASSERT_TRUE(R.Ok) << R.Message;
  EXPECT_EQ(R.Code, ingest::Status::Malformed);

  // A corrupt *binary* submission (truncated mid-record).
  std::string GoodTrace = writeTraceFor(Dir, 9);
  std::error_code Ec;
  const uint64_t GoodSize = fs::file_size(GoodTrace, Ec);
  ASSERT_FALSE(Ec);
  std::string Torn = Dir + "/torn.btrace";
  fs::copy_file(GoodTrace, Torn, Ec);
  ASSERT_FALSE(Ec);
  fs::resize_file(Torn, GoodSize - 5, Ec);
  ASSERT_FALSE(Ec);
  R = submitTcp(Port, Torn, "bad-2");
  ASSERT_TRUE(R.Ok) << R.Message;
  EXPECT_EQ(R.Code, ingest::Status::Malformed);

  // Oversize: rejected up front, before any analysis.
  std::string Big = Dir + "/big.trace";
  Out = std::fopen(Big.c_str(), "wb");
  ASSERT_NE(Out, nullptr);
  std::vector<char> Filler(256 * 1024, 'x');
  std::fwrite(Filler.data(), 1, Filler.size(), Out);
  std::fclose(Out);
  R = submitTcp(Port, Big, "big-1");
  ASSERT_TRUE(R.Ok) << R.Message;
  EXPECT_EQ(R.Code, ingest::Status::TooLarge);

  // The daemon is still healthy and still commits.
  R = submitTcp(Port, GoodTrace, "good-1");
  ASSERT_TRUE(R.Ok) << R.Message;
  EXPECT_EQ(R.Code, ingest::Status::Committed);

  IngestServer::Counters Counters = Server.counters();
  EXPECT_EQ(Counters.MalformedRejected, 2u);
  EXPECT_EQ(Counters.OversizeRejected, 1u);
  EXPECT_EQ(Counters.Committed, 1u);
  Server.stop();
}

TEST(DaemonTest, DropDirectoryIngestsCompletedFiles) {
  std::string Dir = scratchDir("dropdir");
  IngestServer::Config Config = baseConfig(Dir);
  Config.DropDir = Dir + "/drop";
  Config.DropPollMs = 10;

  IngestServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;

  // A well-behaved producer writes under a skipped name, then renames.
  std::vector<std::string> TracePaths;
  for (uint64_t Seed = 21; Seed <= 23; ++Seed) {
    std::string Staged = writeTraceFor(Dir, Seed);
    std::string Final =
        Config.DropDir + "/" + fs::path(Staged).filename().string();
    std::error_code Ec;
    fs::copy_file(Staged, Final + ".tmp", Ec);
    ASSERT_FALSE(Ec);
    fs::rename(Final + ".tmp", Final, Ec);
    ASSERT_FALSE(Ec);
    TracePaths.push_back(Staged);
  }

  const auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (Server.counters().Committed < 3 &&
         std::chrono::steady_clock::now() < Deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(Server.counters().Committed, 3u);

  EXPECT_EQ(Server.aggregatorCopy().serialize(),
            referenceOver(Config, TracePaths).serialize());
  // Consumed files leave the drop directory.
  EXPECT_TRUE(fs::is_empty(Config.DropDir));
  Server.stop();
}

TEST(DaemonTest, RestartFromSnapshotPreservesStateAndIds) {
  std::string Dir = scratchDir("restart");
  IngestServer::Config Config = baseConfig(Dir);
  Config.TcpPort = 0;

  std::vector<std::string> TracePaths;
  std::vector<uint8_t> FirstState;
  {
    IngestServer Server(Config);
    std::string Error;
    ASSERT_TRUE(Server.start(Error)) << Error;
    for (uint64_t Seed = 31; Seed <= 33; ++Seed) {
      TracePaths.push_back(writeTraceFor(Dir, Seed));
      ingest::SubmitResult R =
          submitTcp(Server.tcpPort(), TracePaths.back(),
                    "run-" + std::to_string(Seed));
      ASSERT_TRUE(R.Ok) << R.Message;
      EXPECT_EQ(R.Code, ingest::Status::Committed);
    }
    FirstState = Server.aggregatorCopy().serialize();
    Server.stop();
  }

  // A second server over the same snapshot is the same fleet: state is
  // carried, and the committed ids still answer "duplicate".
  IngestServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;
  EXPECT_EQ(Server.aggregatorCopy().serialize(), FirstState);
  EXPECT_EQ(Server.counters().Committed, 3u);
  for (uint64_t Seed = 31; Seed <= 33; ++Seed) {
    ingest::SubmitResult R =
        submitTcp(Server.tcpPort(), TracePaths[Seed - 31],
                  "run-" + std::to_string(Seed));
    ASSERT_TRUE(R.Ok) << R.Message;
    EXPECT_EQ(R.Code, ingest::Status::Duplicate);
  }
  EXPECT_EQ(Server.aggregatorCopy().serialize(), FirstState);

  // The snapshot alone reconstructs the fleet state too.
  FleetAggregator FromDisk;
  ASSERT_TRUE(
      IngestServer::loadSnapshotFile(Config.SnapshotPath, FromDisk, Error))
      << Error;
  EXPECT_EQ(FromDisk.serialize(), FirstState);
  Server.stop();
}

TEST(DaemonTest, StatsReportAllPipelineCounters) {
  std::string Dir = scratchDir("stats");
  IngestServer::Config Config = baseConfig(Dir);
  Config.TcpPort = 0;

  IngestServer Server(Config);
  std::string Error;
  ASSERT_TRUE(Server.start(Error)) << Error;
  ASSERT_TRUE(
      submitTcp(Server.tcpPort(), writeTraceFor(Dir, 41), "s-1").Ok);

  Socket S = Socket::connectTcp(Server.tcpPort(), Error);
  ASSERT_TRUE(S.valid()) << Error;
  std::string Json;
  ASSERT_TRUE(ingest::requestStats(S, Json, Error)) << Error;
  for (const char *Key :
       {"\"received\":1", "\"committed\":1", "\"duplicates\":0",
        "\"rejected_malformed\":0", "\"rejected_oversize\":0",
        "\"bytes_ingested\":", "\"dynamic_races\":", "\"queue_depth\":",
        "\"spool\":", "\"analyze\":", "\"commit\":"})
    EXPECT_NE(Json.find(Key), std::string::npos) << Key << " in " << Json;
  EXPECT_EQ(Json, Server.statsText());
  Server.stop();
}

#ifdef PACER_RACEDETECTD

/// Spawns racedetectd with stdout on a pipe; returns the pid and leaves
/// the read end in \p OutFd.
pid_t spawnDaemon(const std::vector<std::string> &Args, int &OutFd) {
  int Pipe[2];
  if (pipe(Pipe) != 0)
    return -1;
  pid_t Pid = fork();
  if (Pid < 0) {
    close(Pipe[0]);
    close(Pipe[1]);
    return -1;
  }
  if (Pid == 0) {
    dup2(Pipe[1], STDOUT_FILENO);
    close(Pipe[0]);
    close(Pipe[1]);
    std::vector<char *> Argv;
    Argv.push_back(const_cast<char *>(PACER_RACEDETECTD));
    for (const std::string &Arg : Args)
      Argv.push_back(const_cast<char *>(Arg.c_str()));
    Argv.push_back(nullptr);
    execv(PACER_RACEDETECTD, Argv.data());
    _exit(127);
  }
  close(Pipe[1]);
  OutFd = Pipe[0];
  return Pid;
}

/// Reads daemon stdout lines until the TCP-port announcement; -1 on EOF.
int readAnnouncedPort(int Fd) {
  std::FILE *In = fdopen(Fd, "r");
  if (!In)
    return -1;
  char Line[256];
  int Port = -1;
  while (fgets(Line, sizeof(Line), In)) {
    const char *Marker = std::strstr(Line, "listening on tcp port ");
    if (Marker) {
      Port = std::atoi(Marker + std::strlen("listening on tcp port "));
      break;
    }
  }
  // Leave the stream open (and unread): the daemon only writes again at
  // shutdown, which fits comfortably in the pipe buffer.
  return Port;
}

TEST(DaemonTest, KillNineMidIngestThenRestartLosesNoCommittedWork) {
  std::string Dir = scratchDir("kill9");
  const std::string Snapshot = Dir + "/fleet.snap";
  const std::string Spool = Dir + "/spool";
  // Flags mirrored into an in-process Config for the reference run.
  IngestServer::Config Config;
  Config.SnapshotPath = Snapshot;
  Config.SpoolDir = Spool;
  Config.Setup = pacerSetup(0.5);
  Config.Seed = 5;
  const std::vector<std::string> DaemonArgs = {
      "--tcp-port=0",      "--snapshot=" + Snapshot,
      "--spool-dir=" + Spool, "--detector=pacer",
      "--rate=0.5",        "--seed=5",
      // Snapshot only every 3rd commit: a crash leaves committed-but-
      // unsnapshotted work in the spool, forcing the recovery path.
      "--snapshot-every=3"};

  std::vector<std::string> TracePaths;
  for (uint64_t Seed = 51; Seed <= 59; ++Seed)
    TracePaths.push_back(writeTraceFor(Dir, Seed));
  auto IdFor = [](size_t I) { return "kill9-" + std::to_string(I); };

  int OutFd = -1;
  pid_t Pid = spawnDaemon(DaemonArgs, OutFd);
  ASSERT_GT(Pid, 0);
  int Port = readAnnouncedPort(OutFd);
  ASSERT_GT(Port, 0);

  // Six submissions acked-committed, then three still in flight when the
  // daemon is SIGKILLed. The acked six must survive; the in-flight three
  // may land in any state (that is the point).
  for (size_t I = 0; I < 6; ++I) {
    ingest::SubmitResult R = submitTcp(Port, TracePaths[I], IdFor(I));
    ASSERT_TRUE(R.Ok) << R.Message;
    ASSERT_EQ(R.Code, ingest::Status::Committed) << R.Message;
  }
  std::vector<std::thread> InFlight;
  for (size_t I = 6; I < 9; ++I)
    InFlight.emplace_back(
        [&, I] { submitTcp(Port, TracePaths[I], IdFor(I)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_EQ(kill(Pid, SIGKILL), 0);
  for (std::thread &T : InFlight)
    T.join();
  int WaitStatus = 0;
  ASSERT_EQ(waitpid(Pid, &WaitStatus, 0), Pid);
  close(OutFd);

  // Restart over the same snapshot and spool. Recovery re-ingests
  // whatever was spooled but not covered by a durable snapshot.
  Pid = spawnDaemon(DaemonArgs, OutFd);
  ASSERT_GT(Pid, 0);
  Port = readAnnouncedPort(OutFd);
  ASSERT_GT(Port, 0);

  // Resubmit everything under the original ids: each answers either
  // "duplicate" (it survived, directly or via recovery) or "committed"
  // (it never reached the spool). Exactly-once either way.
  for (size_t I = 0; I < 9; ++I) {
    ingest::SubmitResult R = submitTcp(Port, TracePaths[I], IdFor(I));
    ASSERT_TRUE(R.Ok) << R.Message;
    ASSERT_TRUE(R.Code == ingest::Status::Committed ||
                R.Code == ingest::Status::Duplicate)
        << ingest::statusName(R.Code) << ": " << R.Message;
    if (I < 6) {
      EXPECT_EQ(R.Code, ingest::Status::Duplicate)
          << "acked submission " << I << " was lost by the crash";
    }
  }

  ASSERT_EQ(kill(Pid, SIGTERM), 0);
  ASSERT_EQ(waitpid(Pid, &WaitStatus, 0), Pid);
  EXPECT_TRUE(WIFEXITED(WaitStatus) && WEXITSTATUS(WaitStatus) == 0);
  close(OutFd);

  // The final snapshot equals a single-process pass over all nine
  // traces -- nothing lost, nothing double-counted, bit for bit.
  FleetAggregator FromDisk;
  std::string Error;
  ASSERT_TRUE(IngestServer::loadSnapshotFile(Snapshot, FromDisk, Error))
      << Error;
  EXPECT_EQ(FromDisk.serialize(),
            referenceOver(Config, TracePaths).serialize());
}

#endif // PACER_RACEDETECTD

} // namespace
