//===- tests/integration/EndToEndTest.cpp ---------------------------------==//
//
// Scaled-down end-to-end runs of the full evaluation pipeline on the four
// paper workload models: ground truth, sampled detection, operation
// counting, and space, all through the same code paths the bench binaries
// use.
//
//===----------------------------------------------------------------------===//

#include "harness/DetectionExperiment.h"
#include "harness/SpaceExperiment.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"
#include "support/Stats.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

TEST(EndToEndTest, EveryPaperWorkloadRunsAndFindsRaces) {
  for (const WorkloadSpec &Spec : paperWorkloads()) {
    CompiledWorkload Workload(scaleWorkload(Spec, 0.1));
    TrialResult Result = runTrial(Workload, fastTrackSetup(), 1);
    EXPECT_GT(Result.TraceEvents, 10000u) << Spec.Name;
    EXPECT_GT(Result.DynamicRaces, 0u) << Spec.Name;
    EXPECT_GT(Result.Stats.SyncOps, 100u) << Spec.Name;
  }
}

TEST(EndToEndTest, PacerPipelineOnScaledEclipse) {
  CompiledWorkload Workload(scaleWorkload(eclipseModel(), 0.05));
  GroundTruth Truth = computeGroundTruth(Workload, 10, 500);
  EXPECT_GT(Truth.AllRaces.size(), 5u);
  EXPECT_GE(Truth.AllRaces.size(), Truth.EvaluationRaces.size());

  DetectionPoint Full =
      measureDetection(Workload, Truth, pacerSetup(1.0), 5, 600);
  DetectionPoint Low =
      measureDetection(Workload, Truth, pacerSetup(0.1), 10, 700);
  EXPECT_GT(Full.DistinctDetectionRate, Low.DistinctDetectionRate);
}

TEST(EndToEndTest, Table3ShapeAtThreePercent) {
  // The qualitative Table 3 claim: in non-sampling periods, fast joins
  // and shallow copies dominate slow joins and deep copies, and most
  // accesses take the fast path. Slow non-sampling joins come from the
  // re-convergence after each sampling period (every sbegin bumps all
  // clocks), so their share shrinks as periods grow; at unit-test scale
  // we assert clear dominance, and the table3 bench shows the
  // orders-of-magnitude version with realistic period sizes.
  CompiledWorkload Workload(scaleWorkload(xalanModel(), 0.3));
  DetectorSetup Setup = pacerSetup(0.03);
  Setup.Sampling.PeriodBytes = 1024 * 1024;
  TrialResult Result = runTrial(Workload, Setup, 11);
  const DetectorStats &Stats = Result.Stats;
  EXPECT_GT(Stats.FastJoinsNonSampling, 2 * Stats.SlowJoinsNonSampling);
  EXPECT_GT(Stats.ShallowCopiesNonSampling,
            50 * Stats.DeepCopiesNonSampling);
  EXPECT_GT(Stats.ReadFastNonSampling, 10 * Stats.ReadSlowNonSampling);
  EXPECT_GT(Stats.WriteFastNonSampling, 10 * Stats.WriteSlowNonSampling);
}

TEST(EndToEndTest, EffectiveRateNearSpecifiedOnPaperModel) {
  CompiledWorkload Workload(scaleWorkload(pseudojbbModel(), 0.2));
  DetectorSetup Setup = pacerSetup(0.1);
  RunningStat Effective;
  for (uint64_t Seed = 1; Seed <= 5; ++Seed)
    Effective.add(runTrial(Workload, Setup, Seed).EffectiveAccessRate);
  EXPECT_NEAR(Effective.mean(), 0.1, 0.05);
}

TEST(EndToEndTest, SpaceScalesWithRateOnEclipseModel) {
  CompiledWorkload Workload(scaleWorkload(eclipseModel(), 0.05));
  SpaceSeries R1 = measureSpace(Workload, pacerSetup(0.01), "r1", 8, 3,
                                true);
  SpaceSeries R100 = measureSpace(Workload, pacerSetup(1.0), "r100", 8, 3,
                                  true);
  SpaceSeries LiteRace =
      measureSpace(Workload, literaceSetup(), "literace", 8, 3, true);
  EXPECT_LT(R1.meanBytes(), R100.meanBytes());
  EXPECT_GT(LiteRace.meanBytes(), R1.meanBytes());
}

TEST(EndToEndTest, HsqldbManyThreadsStillLegalAndDetectable) {
  // 403 threads stress vector-clock growth and the wave scheduler.
  CompiledWorkload Workload(scaleWorkload(hsqldbModel(), 0.3));
  Trace T = generateTrace(Workload, 2);
  TraceProfile Profile = profileTrace(T);
  EXPECT_GT(Profile.Forks, 400u);
  TrialResult Result = runTrial(Workload, fastTrackSetup(), 2);
  EXPECT_GT(Result.Races.size(), 10u)
      << "hsqldb model: most certain races manifest";
}

} // namespace
