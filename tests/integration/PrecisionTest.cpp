//===- tests/integration/PrecisionTest.cpp --------------------------------==//
//
// Precision (no false positives) end to end: every race any detector
// reports on a generated workload must be one of the planted racy site
// pairs -- all other accesses are ordered by construction (lock
// discipline, read-only sharing, thread locality, fork/join waves).
//
//===----------------------------------------------------------------------===//

#include "harness/TrialRunner.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <set>

using namespace pacer;

namespace {

class PrecisionTest : public ::testing::TestWithParam<uint64_t> {
protected:
  static std::set<RaceKey> plantedKeys(const CompiledWorkload &Workload) {
    std::set<RaceKey> Keys;
    for (uint32_t Race = 0; Race < Workload.numRaces(); ++Race)
      Keys.insert(Workload.racyKey(Race));
    return Keys;
  }

  void expectOnlyPlanted(const CompiledWorkload &Workload,
                         const DetectorSetup &Setup) {
    TrialResult Result = runTrial(Workload, Setup, GetParam());
    std::set<RaceKey> Planted = plantedKeys(Workload);
    for (const auto &[Key, Count] : Result.Races)
      EXPECT_TRUE(Planted.count(Key))
          << detectorKindName(Setup.Kind) << " false positive ("
          << Key.FirstSite << "," << Key.SecondSite << ")";
  }
};

TEST_P(PrecisionTest, GenericIsPrecise) {
  CompiledWorkload Workload(tinyTestWorkload());
  expectOnlyPlanted(Workload, genericSetup());
}

TEST_P(PrecisionTest, FastTrackIsPrecise) {
  CompiledWorkload Workload(tinyTestWorkload());
  expectOnlyPlanted(Workload, fastTrackSetup());
}

TEST_P(PrecisionTest, PacerIsPreciseAtEveryRate) {
  CompiledWorkload Workload(tinyTestWorkload());
  for (double Rate : {0.02, 0.1, 0.5, 1.0}) {
    DetectorSetup Setup = pacerSetup(Rate);
    Setup.Sampling.PeriodBytes = 8 * 1024;
    expectOnlyPlanted(Workload, Setup);
  }
}

TEST_P(PrecisionTest, LiteRaceIsPrecise) {
  CompiledWorkload Workload(tinyTestWorkload());
  expectOnlyPlanted(Workload, literaceSetup(50));
}

TEST_P(PrecisionTest, MediumWorkloadPrecision) {
  CompiledWorkload Workload(mediumTestWorkload());
  expectOnlyPlanted(Workload, fastTrackSetup());
  DetectorSetup Setup = pacerSetup(0.2);
  Setup.Sampling.PeriodBytes = 32 * 1024;
  expectOnlyPlanted(Workload, Setup);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecisionTest,
                         ::testing::Range<uint64_t>(1, 11));

} // namespace
