//===- tests/TestUtil.h - Shared test helpers ------------------*- C++ -*-===//
//
// Part of the PACER reproduction, released under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared across the test suite: a race sink that collects full
/// reports, a fluent builder for hand-written traces, a dispatcher that
/// replays traces straight into a detector (no sampling controller), and a
/// legality validator for generated traces.
///
//===----------------------------------------------------------------------===//

#ifndef PACER_TESTS_TESTUTIL_H
#define PACER_TESTS_TESTUTIL_H

#include "core/RaceReport.h"
#include "detectors/Detector.h"
#include "runtime/Runtime.h"
#include "sim/Action.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace pacer::test {

/// Sink that stores every report.
class CollectingSink final : public RaceSink {
public:
  std::vector<RaceReport> Reports;

  void onRace(const RaceReport &Report) override {
    Reports.push_back(Report);
  }

  /// Normalized distinct keys of all reports.
  std::set<RaceKey> keys() const {
    std::set<RaceKey> Keys;
    for (const RaceReport &Report : Reports) {
      SiteId A = Report.FirstSite, B = Report.SecondSite;
      Keys.insert({std::min(A, B), std::max(A, B)});
    }
    return Keys;
  }

  bool empty() const { return Reports.empty(); }
  size_t size() const { return Reports.size(); }
};

/// Fluent hand-trace builder. Sites default to 100 + var id so race keys
/// are predictable in scenario tests.
class TraceBuilder {
public:
  TraceBuilder &read(ThreadId Tid, VarId Var, SiteId Site = InvalidId) {
    T.push_back({ActionKind::Read, Tid, Var, defaultSite(Var, Site)});
    return *this;
  }
  TraceBuilder &write(ThreadId Tid, VarId Var, SiteId Site = InvalidId) {
    T.push_back({ActionKind::Write, Tid, Var, defaultSite(Var, Site)});
    return *this;
  }
  TraceBuilder &acq(ThreadId Tid, LockId Lock) {
    T.push_back({ActionKind::Acquire, Tid, Lock, InvalidId});
    return *this;
  }
  TraceBuilder &rel(ThreadId Tid, LockId Lock) {
    T.push_back({ActionKind::Release, Tid, Lock, InvalidId});
    return *this;
  }
  TraceBuilder &fork(ThreadId Parent, ThreadId Child) {
    T.push_back({ActionKind::Fork, Parent, Child, InvalidId});
    return *this;
  }
  TraceBuilder &join(ThreadId Parent, ThreadId Child) {
    T.push_back({ActionKind::Join, Parent, Child, InvalidId});
    return *this;
  }
  TraceBuilder &volRead(ThreadId Tid, VolatileId Vol) {
    T.push_back({ActionKind::VolatileRead, Tid, Vol, InvalidId});
    return *this;
  }
  TraceBuilder &volWrite(ThreadId Tid, VolatileId Vol) {
    T.push_back({ActionKind::VolatileWrite, Tid, Vol, InvalidId});
    return *this;
  }
  TraceBuilder &exit(ThreadId Tid) {
    T.push_back({ActionKind::ThreadExit, Tid, InvalidId, InvalidId});
    return *this;
  }

  Trace take() { return std::move(T); }

private:
  static SiteId defaultSite(VarId Var, SiteId Site) {
    return Site == InvalidId ? 100 + Var : Site;
  }
  Trace T;
};

/// Replays \p T into \p D with no sampling controller.
inline void replayInto(Detector &D, const Trace &T) {
  Runtime RT(D);
  RT.replay(T);
}

/// Checks synchronization legality of a generated trace. Returns an empty
/// string if legal, else a description of the first violation.
inline std::string validateTrace(const Trace &T, uint32_t TotalThreads) {
  std::vector<int> ThreadState(TotalThreads, 0); // 0=unborn 1=live 2=done
  ThreadState[0] = 1;
  std::vector<ThreadId> LockOwner;
  auto Owner = [&LockOwner](LockId Lock) -> ThreadId & {
    if (Lock >= LockOwner.size())
      LockOwner.resize(Lock + 1, InvalidId);
    return LockOwner[Lock];
  };

  for (size_t I = 0; I != T.size(); ++I) {
    const Action &A = T[I];
    if (A.Tid >= TotalThreads)
      return "thread id out of range at " + std::to_string(I);
    if (ThreadState[A.Tid] != 1)
      return "action by non-live thread at " + std::to_string(I);
    switch (A.Kind) {
    case ActionKind::Acquire:
      if (Owner(A.Target) != InvalidId)
        return "acquire of held lock at " + std::to_string(I);
      Owner(A.Target) = A.Tid;
      break;
    case ActionKind::Release:
      if (Owner(A.Target) != A.Tid)
        return "release of unheld lock at " + std::to_string(I);
      Owner(A.Target) = InvalidId;
      break;
    case ActionKind::Fork:
      if (A.Target >= TotalThreads || ThreadState[A.Target] != 0)
        return "bad fork at " + std::to_string(I);
      ThreadState[A.Target] = 1;
      break;
    case ActionKind::Join:
      if (A.Target >= TotalThreads || ThreadState[A.Target] != 2)
        return "join of unfinished thread at " + std::to_string(I);
      break;
    case ActionKind::ThreadExit:
      ThreadState[A.Tid] = 2;
      break;
    default:
      // AwaitVolatile may legally execute before its threshold: a spin
      // expires when nothing else can run.
      break;
    }
  }
  for (ThreadId Owner : LockOwner)
    if (Owner != InvalidId)
      return "lock still held at end of trace";
  for (uint32_t Tid = 0; Tid < TotalThreads; ++Tid)
    if (ThreadState[Tid] != 2)
      return "thread never finished: " + std::to_string(Tid);
  return "";
}

/// Maximum number of simultaneously live threads over the trace.
inline uint32_t maxLiveThreads(const Trace &T, uint32_t TotalThreads) {
  uint32_t Live = 1; // Main.
  uint32_t Max = 1;
  for (const Action &A : T) {
    if (A.Kind == ActionKind::Fork) {
      ++Live;
      Max = std::max(Max, Live);
    } else if (A.Kind == ActionKind::ThreadExit) {
      --Live;
    }
  }
  (void)TotalThreads;
  return Max;
}

} // namespace pacer::test

#endif // PACER_TESTS_TESTUTIL_H
