//===- tests/runtime/FleetSnapshotTest.cpp --------------------------------==//
//
// Persistence and merge algebra of the FleetAggregator: snapshots
// round-trip bit-identically (serialize -> deserialize -> serialize gives
// equal bytes), merge() is exactly commutative and -- at the deployment
// model's single global rate -- exactly associative, and every corruption
// of a snapshot is rejected with a diagnostic rather than partial state.
// Bit-identity matters because the daemon's crash-recovery story promises
// that a restart from a snapshot is indistinguishable from never having
// crashed.
//
//===----------------------------------------------------------------------===//

#include "runtime/FleetAggregator.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

using namespace pacer;

namespace {

RaceReport report(SiteId First, SiteId Second, ThreadId T1 = 1,
                  ThreadId T2 = 2) {
  RaceReport Report;
  Report.Var = First;
  Report.FirstSite = First;
  Report.SecondSite = Second;
  Report.FirstThread = T1;
  Report.SecondThread = T2;
  return Report;
}

/// An aggregator with a deterministic mix of instances: repeated races,
/// singleton races, and clean runs, all at the fleet rate (the
/// EffectiveRate = -1 path the daemon uses).
FleetAggregator sampleFleet(double Rate, uint32_t Salt) {
  FleetAggregator Fleet(Rate);
  for (uint32_t Instance = 0; Instance < 8; ++Instance) {
    RaceLog Log;
    if ((Instance + Salt) % 2 == 0)
      for (int Rep = 0; Rep < 3; ++Rep)
        Log.onRace(report(10 + Salt, 20 + Salt));
    if ((Instance + Salt) % 3 == 0)
      Log.onRace(report(30, 40, 3 + Salt, 5));
    Fleet.addInstance(Log);
  }
  return Fleet;
}

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + "/" + Name;
}

TEST(FleetSnapshotTest, SerializeDeserializeIsBitIdentical) {
  FleetAggregator Fleet = sampleFleet(0.03, 1);
  std::vector<uint8_t> Bytes = Fleet.serialize();

  FleetAggregator Loaded;
  std::string Error;
  ASSERT_TRUE(Loaded.deserialize(Bytes.data(), Bytes.size(), Error))
      << Error;
  EXPECT_EQ(Loaded.instanceCount(), Fleet.instanceCount());
  EXPECT_EQ(Loaded.distinctRaceCount(), Fleet.distinctRaceCount());
  EXPECT_DOUBLE_EQ(Loaded.samplingRate(), Fleet.samplingRate());
  EXPECT_EQ(Loaded.serialize(), Bytes);
}

TEST(FleetSnapshotTest, FileSnapshotRoundTrips) {
  FleetAggregator Fleet = sampleFleet(0.1, 2);
  std::string Path = tempPath("pacer_fleet_snap.bin");
  std::string Error;
  ASSERT_TRUE(Fleet.saveSnapshot(Path, Error)) << Error;

  FleetAggregator Loaded;
  ASSERT_TRUE(FleetAggregator::loadSnapshot(Path, Loaded, Error)) << Error;
  EXPECT_EQ(Loaded.serialize(), Fleet.serialize());

  // No .tmp residue from the atomic-rename protocol.
  std::FILE *Tmp = std::fopen((Path + ".tmp").c_str(), "rb");
  EXPECT_EQ(Tmp, nullptr);
  if (Tmp)
    std::fclose(Tmp);
  std::remove(Path.c_str());
}

TEST(FleetSnapshotTest, LoadMissingFileFailsCleanly) {
  FleetAggregator Loaded;
  std::string Error;
  EXPECT_FALSE(FleetAggregator::loadSnapshot(
      tempPath("pacer_fleet_nonexistent.bin"), Loaded, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(FleetSnapshotTest, MergeIsExactlyCommutative) {
  FleetAggregator A = sampleFleet(0.05, 1);
  FleetAggregator B = sampleFleet(0.05, 4);

  FleetAggregator AB = A;
  AB.merge(B);
  FleetAggregator BA = B;
  BA.merge(A);

  EXPECT_EQ(AB.serialize(), BA.serialize());
  EXPECT_EQ(AB.instanceCount(), A.instanceCount() + B.instanceCount());
}

TEST(FleetSnapshotTest, MergeIsAssociativeAtTheGlobalRate) {
  // All instances at one global rate: the effective-rate accumulator sits
  // at a Welford fixed point, so even its floating-point state
  // re-associates exactly and the whole merge is bit-associative.
  FleetAggregator A = sampleFleet(0.03, 1);
  FleetAggregator B = sampleFleet(0.03, 2);
  FleetAggregator C = sampleFleet(0.03, 3);

  FleetAggregator Left = A; // (A + B) + C
  Left.merge(B);
  Left.merge(C);
  FleetAggregator Mid = B; // A + (B + C), via commuted outer merge.
  Mid.merge(C);
  FleetAggregator Right = A;
  Right.merge(Mid);

  EXPECT_EQ(Left.serialize(), Right.serialize());
}

TEST(FleetSnapshotTest, MergeMatchesDirectIngestion) {
  // Splitting one instance stream across two aggregators and merging must
  // equal ingesting everything into one -- the property that lets the
  // fleet itself shard its collectors.
  FleetAggregator Whole(0.2), Half1(0.2), Half2(0.2);
  for (uint32_t Instance = 0; Instance < 10; ++Instance) {
    RaceLog Log;
    Log.onRace(report(7, 9, Instance % 3, 4));
    if (Instance % 2 == 0)
      Log.onRace(report(11, 13));
    Whole.addInstance(Log);
    (Instance < 5 ? Half1 : Half2).addInstance(Log);
  }
  Half1.merge(Half2);
  EXPECT_EQ(Half1.serialize(), Whole.serialize());
}

TEST(FleetSnapshotTest, ExampleReportIndependentOfMergeOrder) {
  // Each side sees a different example for the same key; the survivor is
  // the canonical minimum either way.
  FleetAggregator A(1.0), B(1.0);
  RaceLog LogA, LogB;
  LogA.onRace(report(1, 2, /*T1=*/9, /*T2=*/9));
  LogB.onRace(report(1, 2, /*T1=*/2, /*T2=*/3));
  A.addInstance(LogA);
  B.addInstance(LogB);

  FleetAggregator AB = A;
  AB.merge(B);
  FleetAggregator BA = B;
  BA.merge(A);
  ASSERT_EQ(AB.summarize().size(), 1u);
  EXPECT_EQ(AB.summarize()[0].Example.FirstThread, 2u);
  EXPECT_EQ(AB.serialize(), BA.serialize());
}

TEST(FleetSnapshotTest, RejectsEveryCorruption) {
  FleetAggregator Fleet = sampleFleet(0.03, 5);
  const std::vector<uint8_t> Good = Fleet.serialize();

  struct Case {
    const char *Name;
    std::vector<uint8_t> Bytes;
  };
  std::vector<Case> Cases;
  Cases.push_back({"empty", {}});
  Cases.push_back({"short_magic", {Good.begin(), Good.begin() + 4}});

  Case BadMagic{"bad_magic", Good};
  BadMagic.Bytes[2] = 'X';
  Cases.push_back(BadMagic);

  Case BadVersion{"bad_version", Good};
  BadVersion.Bytes[8] = 0x7E;
  Cases.push_back(BadVersion);

  Case Truncated{"truncated", Good};
  Truncated.Bytes.resize(Good.size() - 6);
  Cases.push_back(Truncated);

  Case Trailing{"trailing_bytes", Good};
  Trailing.Bytes.push_back(0);
  Cases.push_back(Trailing);

  Case FlippedBit{"checksum_mismatch", Good};
  FlippedBit.Bytes[Good.size() / 2] ^= 0x10;
  Cases.push_back(FlippedBit);

  for (const Case &Corrupt : Cases) {
    FleetAggregator Loaded = sampleFleet(0.5, 9); // Pre-existing state.
    std::string Error;
    EXPECT_FALSE(Loaded.deserialize(Corrupt.Bytes.data(),
                                    Corrupt.Bytes.size(), Error))
        << Corrupt.Name << " accepted";
    EXPECT_FALSE(Error.empty()) << Corrupt.Name;
    // A failed load leaves the aggregator empty, never half-loaded.
    EXPECT_EQ(Loaded.instanceCount(), 0u) << Corrupt.Name;
    EXPECT_EQ(Loaded.distinctRaceCount(), 0u) << Corrupt.Name;
  }
}

} // namespace
