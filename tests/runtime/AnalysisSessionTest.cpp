//===- tests/runtime/AnalysisSessionTest.cpp ------------------------------==//
//
// Regression pins for the AnalysisSession facade: the legacy entry points
// (runTrial / runTrialOnTrace / runTrialOnStream, now thin wrappers) are
// exactly equal to direct session calls for every detector kind at shard
// counts 1 and 4, and the four analyze* paths over the same input --
// in-memory trace, whole-file load, streamed file, explicit reader --
// agree bit-for-bit on everything the analysis computes. These equalities
// are what made consolidating four replay entry points behind one facade
// safe, and they must survive future refactors of either layer.
//
//===----------------------------------------------------------------------===//

#include "runtime/AnalysisSession.h"

#include "harness/TrialRunner.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace pacer;

namespace {

/// DetectorStats is a flat aggregate of u64 counters; bytewise equality
/// is field equality.
bool sameStats(const DetectorStats &A, const DetectorStats &B) {
  return std::memcmp(&A, &B, sizeof(DetectorStats)) == 0;
}

/// Sorted race keys of the sample reports (sharded replay reorders the
/// cross-shard report sequence; the set is what is stable).
std::vector<RaceKey> reportKeys(const std::vector<RaceReport> &Reports) {
  std::vector<RaceKey> Keys;
  for (const RaceReport &Report : Reports)
    Keys.push_back({std::min(Report.FirstSite, Report.SecondSite),
                    std::max(Report.FirstSite, Report.SecondSite)});
  std::sort(Keys.begin(), Keys.end(), [](RaceKey A, RaceKey B) {
    return A.FirstSite != B.FirstSite ? A.FirstSite < B.FirstSite
                                      : A.SecondSite < B.SecondSite;
  });
  return Keys;
}

void expectSameTrial(const TrialResult &A, const TrialResult &B,
                     const std::string &What) {
  EXPECT_EQ(A.Races, B.Races) << What;
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces) << What;
  EXPECT_TRUE(sameStats(A.Stats, B.Stats)) << What;
  EXPECT_DOUBLE_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate) << What;
  EXPECT_DOUBLE_EQ(A.EffectiveSyncRate, B.EffectiveSyncRate) << What;
  EXPECT_DOUBLE_EQ(A.LiteRaceEffectiveRate, B.LiteRaceEffectiveRate)
      << What;
  EXPECT_EQ(A.Boundaries, B.Boundaries) << What;
  EXPECT_EQ(A.TraceEvents, B.TraceEvents) << What;
}

void expectSameAnalysis(const AnalysisResult &A, const AnalysisResult &B,
                        const std::string &What) {
  ASSERT_TRUE(A.Ok) << What << ": " << A.Error;
  ASSERT_TRUE(B.Ok) << What << ": " << B.Error;
  expectSameTrial(A.trial(), B.trial(), What);
  EXPECT_EQ(reportKeys(A.SampleReports), reportKeys(B.SampleReports))
      << What;
}

/// Every detector kind, with PACER configured to cross many sampling
/// periods on the tiny workload.
std::vector<std::pair<std::string, DetectorSetup>> detectorMatrix() {
  DetectorSetup Pacer = pacerSetup(0.3);
  Pacer.Sampling.PeriodBytes = 16 * 1024;
  return {{"generic", genericSetup()},
          {"fasttrack", fastTrackSetup()},
          {"pacer_r30", Pacer},
          {"literace", literaceSetup(100)}};
}

AnalysisRequest requestFor(DetectorSetup Setup, unsigned Shards,
                           uint64_t Seed, bool CollectReports) {
  AnalysisRequest Request;
  Request.Setup = std::move(Setup);
  Request.Setup.Shards = Shards;
  Request.Setup.ShardJobs = 1; // Deterministic and CI-friendly.
  Request.Seed = Seed;
  Request.CollectReports = CollectReports;
  return Request;
}

TEST(AnalysisSessionTest, LegacyWrappersEqualDirectSessionCalls) {
  CompiledWorkload Workload(tinyTestWorkload());
  const uint64_t Seed = 11;
  Trace T = generateTrace(Workload, Seed);

  for (const auto &[Name, Setup] : detectorMatrix()) {
    for (unsigned Shards : {1u, 4u}) {
      DetectorSetup Sharded = Setup;
      Sharded.Shards = Shards;
      Sharded.ShardJobs = 1;
      const std::string What = Name + " K=" + std::to_string(Shards);

      // The wrappers run with CollectReports off (the legacy API never
      // exposed reports); mirror that in the direct calls.
      AnalysisSession Session(
          Workload, requestFor(Setup, Shards, Seed, /*CollectReports=*/false));

      expectSameTrial(runTrial(Workload, Sharded, Seed),
                      Session.analyzeGenerated().trial(),
                      What + " runTrial");
      expectSameTrial(runTrialOnTrace(T, Workload, Sharded, Seed),
                      Session.analyzeTrace(T).trial(),
                      What + " runTrialOnTrace");
    }
  }
}

TEST(AnalysisSessionTest, StreamWrapperEqualsDirectStreamCall) {
  CompiledWorkload Workload(tinyTestWorkload());
  const uint64_t Seed = 13;
  Trace T = generateTrace(Workload, Seed);
  std::string Path =
      ::testing::TempDir() + "/pacer_session_stream.btrace";
  ASSERT_TRUE(writeTraceFileBinary(Path, T));

  for (const auto &[Name, Setup] : detectorMatrix()) {
    StreamingTraceReader WrapperReader(Path, /*WindowActions=*/512);
    ASSERT_TRUE(WrapperReader.ok()) << WrapperReader.error();
    std::string Error;
    TrialResult Legacy =
        runTrialOnStream(WrapperReader, Workload, Setup, Seed, &Error);
    EXPECT_TRUE(Error.empty()) << Error;

    StreamingTraceReader SessionReader(Path, 512);
    AnalysisSession Session(Workload,
                            requestFor(Setup, 1, Seed, false));
    AnalysisResult Direct = Session.analyzeStream(SessionReader);
    ASSERT_TRUE(Direct.Ok) << Direct.Error;
    expectSameTrial(Legacy, Direct.trial(), Name + " stream");
  }
  std::remove(Path.c_str());
}

TEST(AnalysisSessionTest, AllInputPathsAgreeBitForBit) {
  CompiledWorkload Workload(tinyTestWorkload());
  const uint64_t Seed = 17;
  Trace T = generateTrace(Workload, Seed);
  std::string Path = ::testing::TempDir() + "/pacer_session_paths.btrace";
  ASSERT_TRUE(writeTraceFileBinary(Path, T));

  for (const auto &[Name, Setup] : detectorMatrix()) {
    for (unsigned Shards : {1u, 4u}) {
      AnalysisSession Session(
          Workload, requestFor(Setup, Shards, Seed, /*CollectReports=*/true));
      const std::string What = Name + " K=" + std::to_string(Shards);

      AnalysisResult FromTrace = Session.analyzeTrace(T);
      AnalysisResult FromFile = Session.analyzeFile(Path);
      expectSameAnalysis(FromTrace, FromFile, What + " file");
      EXPECT_EQ(FromFile.ResolvedShards, Shards) << What;

      // Streamed file analysis: same numbers from O(window) memory.
      AnalysisRequest Streamed =
          requestFor(Setup, Shards, Seed, /*CollectReports=*/true);
      Streamed.Stream = true;
      Streamed.StreamWindow = 700; // Forces many windows on ~10k actions.
      AnalysisResult FromStreamedFile =
          AnalysisSession(Workload, Streamed).analyzeFile(Path);
      expectSameAnalysis(FromTrace, FromStreamedFile, What + " streamed");
    }
  }
  std::remove(Path.c_str());
}

TEST(AnalysisSessionTest, ShardCountsAgreeAndAutoResolves) {
  CompiledWorkload Workload(tinyTestWorkload());
  const uint64_t Seed = 19;
  Trace T = generateTrace(Workload, Seed);
  DetectorSetup Setup = fastTrackSetup();

  AnalysisResult Sequential =
      AnalysisSession(Workload, requestFor(Setup, 1, Seed, true))
          .analyzeTrace(T);
  AnalysisResult Sharded =
      AnalysisSession(Workload, requestFor(Setup, 4, Seed, true))
          .analyzeTrace(T);
  expectSameAnalysis(Sequential, Sharded, "K=1 vs K=4");
  EXPECT_EQ(Sequential.ResolvedShards, 1u);
  EXPECT_EQ(Sharded.ResolvedShards, 4u);

  // Auto shards (Shards = 0) resolve to a concrete count.
  AnalysisResult Auto =
      AnalysisSession(Workload, requestFor(Setup, 0, Seed, true))
          .analyzeTrace(T);
  ASSERT_TRUE(Auto.Ok) << Auto.Error;
  EXPECT_GE(Auto.ResolvedShards, 1u);
  expectSameAnalysis(Sequential, Auto, "K=1 vs auto");
}

TEST(AnalysisSessionTest, RepeatedCallsAreIndependentAndDeterministic) {
  // The session is stateless across calls: the third analysis of the
  // same trace equals the first.
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 23);
  DetectorSetup Pacer = pacerSetup(0.4);
  Pacer.Sampling.PeriodBytes = 16 * 1024;
  AnalysisSession Session(Workload, requestFor(Pacer, 1, 23, true));

  AnalysisResult First = Session.analyzeTrace(T);
  Session.analyzeTrace(T);
  AnalysisResult Third = Session.analyzeTrace(T);
  expectSameAnalysis(First, Third, "repeat");
}

TEST(AnalysisSessionTest, FileErrorsSurfaceCleanly) {
  CompiledWorkload Workload(flatSiteWorkload());
  AnalysisSession Session(Workload, AnalysisRequest{});

  AnalysisResult Missing =
      Session.analyzeFile(::testing::TempDir() + "/pacer_no_such.trace");
  EXPECT_FALSE(Missing.Ok);
  EXPECT_FALSE(Missing.Error.empty());

  std::string Path = ::testing::TempDir() + "/pacer_session_bad.trace";
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  ASSERT_NE(Out, nullptr);
  std::fputs("pacer-trace v1 1\nnot an action\n", Out);
  std::fclose(Out);
  AnalysisResult Corrupt = Session.analyzeFile(Path);
  EXPECT_FALSE(Corrupt.Ok);
  EXPECT_FALSE(Corrupt.Error.empty());
  std::remove(Path.c_str());
}

} // namespace
