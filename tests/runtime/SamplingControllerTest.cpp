//===- tests/runtime/SamplingControllerTest.cpp ---------------------------==//

#include "runtime/SamplingController.h"

#include "detectors/PacerDetector.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

/// Minimal detector that just tracks the sampling flag and period count.
class FlagDetector final : public Detector {
public:
  explicit FlagDetector(RaceSink &Sink) : Detector(Sink) {}
  const char *name() const override { return "flag"; }
  void fork(ThreadId, ThreadId) override {}
  void join(ThreadId, ThreadId) override {}
  void acquire(ThreadId, LockId) override {}
  void release(ThreadId, LockId) override {}
  void volatileRead(ThreadId, VolatileId) override {}
  void volatileWrite(ThreadId, VolatileId) override {}
  void read(ThreadId, VarId, SiteId) override {}
  void write(ThreadId, VarId, SiteId) override {}
  size_t liveMetadataBytes() const override { return 0; }

  void beginSamplingPeriod() override {
    EXPECT_FALSE(Sampling);
    Sampling = true;
    ++Periods;
  }
  void endSamplingPeriod() override {
    EXPECT_TRUE(Sampling);
    Sampling = false;
  }
  bool isSampling() const override { return Sampling; }

  bool Sampling = false;
  uint64_t Periods = 0;
};

/// Feeds N synthetic access actions with sync ops interleaved.
void feed(SamplingController &Controller, FlagDetector &D, uint64_t Events,
          double SyncFraction = 0.03) {
  uint64_t SyncEvery =
      SyncFraction > 0 ? static_cast<uint64_t>(1.0 / SyncFraction) : 0;
  for (uint64_t I = 0; I < Events; ++I) {
    ActionKind Kind = (SyncEvery && I % SyncEvery == 0)
                          ? ActionKind::Acquire
                          : (I % 4 == 0 ? ActionKind::Write
                                        : ActionKind::Read);
    Controller.beforeAction(Kind, D);
    EXPECT_EQ(D.Sampling, Controller.isSampling());
  }
}

TEST(SamplingControllerTest, RateZeroNeverSamples) {
  NullRaceSink Sink;
  FlagDetector D(Sink);
  SamplingConfig Config;
  Config.TargetRate = 0.0;
  SamplingController Controller(Config, 1);
  Controller.start(D);
  feed(Controller, D, 100000);
  EXPECT_EQ(D.Periods, 0u);
  EXPECT_DOUBLE_EQ(Controller.effectiveAccessRate(), 0.0);
}

TEST(SamplingControllerTest, RateOneAlwaysSamples) {
  NullRaceSink Sink;
  FlagDetector D(Sink);
  SamplingConfig Config;
  Config.TargetRate = 1.0;
  Config.PeriodBytes = 4096;
  SamplingController Controller(Config, 1);
  Controller.start(D);
  feed(Controller, D, 50000);
  EXPECT_DOUBLE_EQ(Controller.effectiveAccessRate(), 1.0);
  EXPECT_GT(Controller.boundaryCount(), 10u);
  EXPECT_EQ(Controller.samplingPeriods(), Controller.boundaryCount() + 1)
      << "every boundary re-enters sampling, plus the initial decision";
}

TEST(SamplingControllerTest, BoundariesFireAtNurseryCadence) {
  NullRaceSink Sink;
  FlagDetector D(Sink);
  SamplingConfig Config;
  Config.TargetRate = 0.0; // No metadata inflation.
  Config.PeriodBytes = 4000;
  Config.BaseBytesPerEvent = 40;
  SamplingController Controller(Config, 1);
  Controller.start(D);
  feed(Controller, D, 10000, 0.0);
  // 10000 events * 40 bytes / 4000 bytes = 100 boundaries.
  EXPECT_EQ(Controller.boundaryCount(), 100u);
}

TEST(SamplingControllerTest, EffectiveRateTracksTargetWithCorrection) {
  for (double Target : {0.01, 0.05, 0.25}) {
    NullRaceSink Sink;
    FlagDetector D(Sink);
    SamplingConfig Config;
    Config.TargetRate = Target;
    Config.PeriodBytes = 8 * 1024;
    SamplingController Controller(Config, 7);
    Controller.start(D);
    feed(Controller, D, 2000000);
    EXPECT_NEAR(Controller.effectiveAccessRate(), Target, Target * 0.35)
        << "target " << Target;
  }
}

TEST(SamplingControllerTest, MetadataBiasUncorrectedUndershoots) {
  // With metadata allocation shortening sampling periods and no
  // correction, the effective rate falls below the specified rate.
  NullRaceSink Sink;
  FlagDetector Corrected(Sink), Uncorrected(Sink);
  SamplingConfig Config;
  Config.TargetRate = 0.25;
  Config.PeriodBytes = 8 * 1024;
  Config.MetadataBytesPerSampledAccess = 160; // Pronounced bias.

  SamplingConfig NoFix = Config;
  NoFix.BiasCorrection = false;

  SamplingController WithFix(Config, 3);
  SamplingController WithoutFix(NoFix, 3);
  WithFix.start(Corrected);
  WithoutFix.start(Uncorrected);
  feed(WithFix, Corrected, 1000000);
  feed(WithoutFix, Uncorrected, 1000000);

  EXPECT_LT(WithoutFix.effectiveAccessRate(), 0.22)
      << "uncorrected bias must undershoot the 25% target";
  EXPECT_GT(WithFix.effectiveAccessRate(),
            WithoutFix.effectiveAccessRate())
      << "correction recovers toward the target";
}

TEST(SamplingControllerTest, DeterministicGivenSeed) {
  auto Run = [](uint64_t Seed) {
    NullRaceSink Sink;
    FlagDetector D(Sink);
    SamplingConfig Config;
    Config.TargetRate = 0.1;
    Config.PeriodBytes = 4096;
    SamplingController Controller(Config, Seed);
    Controller.start(D);
    feed(Controller, D, 100000);
    return Controller.effectiveAccessRate();
  };
  EXPECT_DOUBLE_EQ(Run(5), Run(5));
  EXPECT_NE(Run(5), Run(6));
}

TEST(SamplingControllerTest, ThreadExitIgnored) {
  NullRaceSink Sink;
  FlagDetector D(Sink);
  SamplingConfig Config;
  Config.TargetRate = 1.0;
  Config.PeriodBytes = 100;
  SamplingController Controller(Config, 1);
  Controller.start(D);
  for (int I = 0; I < 1000; ++I)
    Controller.beforeAction(ActionKind::ThreadExit, D);
  EXPECT_EQ(Controller.boundaryCount(), 0u);
}

} // namespace
