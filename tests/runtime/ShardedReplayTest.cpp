//===- tests/runtime/ShardedReplayTest.cpp --------------------------------==//
//
// The sharded replay engine's core contract: a trial analysed across K
// variable shards is *bit-identical* to the sequential trial -- same
// races with the same dynamic counts, same operation statistics, same
// metadata bytes, same effective rates -- for every detector and every
// shard count, including shard counts that do not divide the variable
// space evenly. EXPECT_EQ / exact double comparison throughout, exactly
// like the jobs-invariance tests for the trial-level engine.
//
// Also covers the batched detector API itself: every accessBatch override
// must be observationally identical to the base-class per-action loop.
//
//===----------------------------------------------------------------------===//

#include "detectors/FastTrackDetector.h"
#include "detectors/LiteRaceDetector.h"
#include "detectors/PacerDetector.h"
#include "harness/TrialRunner.h"
#include "runtime/RaceLog.h"
#include "runtime/Runtime.h"
#include "runtime/ShardedReplay.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

void expectSameStats(const DetectorStats &A, const DetectorStats &B) {
  EXPECT_EQ(A.SlowJoinsSampling, B.SlowJoinsSampling);
  EXPECT_EQ(A.FastJoinsSampling, B.FastJoinsSampling);
  EXPECT_EQ(A.SlowJoinsNonSampling, B.SlowJoinsNonSampling);
  EXPECT_EQ(A.FastJoinsNonSampling, B.FastJoinsNonSampling);
  EXPECT_EQ(A.DeepCopiesSampling, B.DeepCopiesSampling);
  EXPECT_EQ(A.ShallowCopiesSampling, B.ShallowCopiesSampling);
  EXPECT_EQ(A.DeepCopiesNonSampling, B.DeepCopiesNonSampling);
  EXPECT_EQ(A.ShallowCopiesNonSampling, B.ShallowCopiesNonSampling);
  EXPECT_EQ(A.ReadSlowSampling, B.ReadSlowSampling);
  EXPECT_EQ(A.ReadSlowNonSampling, B.ReadSlowNonSampling);
  EXPECT_EQ(A.ReadFastNonSampling, B.ReadFastNonSampling);
  EXPECT_EQ(A.WriteSlowSampling, B.WriteSlowSampling);
  EXPECT_EQ(A.WriteSlowNonSampling, B.WriteSlowNonSampling);
  EXPECT_EQ(A.WriteFastNonSampling, B.WriteFastNonSampling);
  EXPECT_EQ(A.RacesReported, B.RacesReported);
  EXPECT_EQ(A.SyncOps, B.SyncOps);
  EXPECT_EQ(A.ClockClones, B.ClockClones);
}

void expectSameResult(const TrialResult &A, const TrialResult &B) {
  ASSERT_EQ(A.Races.size(), B.Races.size());
  for (const auto &[Key, Count] : A.Races) {
    auto It = B.Races.find(Key);
    ASSERT_TRUE(It != B.Races.end()) << "race key missing in sharded run";
    EXPECT_EQ(Count, It->second);
  }
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces);
  expectSameStats(A.Stats, B.Stats);
  EXPECT_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate);
  EXPECT_EQ(A.EffectiveSyncRate, B.EffectiveSyncRate);
  EXPECT_EQ(A.LiteRaceEffectiveRate, B.LiteRaceEffectiveRate);
  EXPECT_EQ(A.Boundaries, B.Boundaries);
  EXPECT_EQ(A.TraceEvents, B.TraceEvents);
  EXPECT_EQ(A.FinalMetadataBytes, B.FinalMetadataBytes);
}

struct NamedSetup {
  const char *Name;
  DetectorSetup Setup;
};

std::vector<NamedSetup> allSetups() {
  DetectorSetup PacerSampled = pacerSetup(0.03);
  // Small periods so the trial crosses many sampling boundaries; the
  // boundary schedule has to stay aligned across replicas.
  PacerSampled.Sampling.PeriodBytes = 12 * 1024;
  return {{"pacer_r3", PacerSampled},
          {"pacer_r100", pacerSetup(1.0)},
          {"fasttrack", fastTrackSetup()},
          {"generic", genericSetup()},
          {"literace", literaceSetup()}};
}

void expectShardInvariant(const WorkloadSpec &Spec, uint64_t Seed,
                          std::initializer_list<unsigned> ShardCounts) {
  CompiledWorkload Workload(Spec);
  for (const NamedSetup &NS : allSetups()) {
    DetectorSetup Sequential = NS.Setup;
    Sequential.Shards = 1;
    TrialResult Baseline = runTrial(Workload, Sequential, Seed);
    // Both sharded engines -- full-scan replicas and the TraceIndex walk
    // -- must reproduce the sequential result exactly.
    for (bool UseIndex : {false, true}) {
      for (unsigned Shards : ShardCounts) {
        DetectorSetup Sharded = NS.Setup;
        Sharded.Shards = Shards;
        Sharded.ShardUseIndex = UseIndex;
        TrialResult Result = runTrial(Workload, Sharded, Seed);
        SCOPED_TRACE(std::string(NS.Name) + " shards=" +
                     std::to_string(Shards) +
                     (UseIndex ? " indexed" : " full-scan"));
        expectSameResult(Baseline, Result);
      }
    }
  }
}

} // namespace

TEST(ShardedReplayTest, TinyWorkloadIdenticalAcrossShardCounts) {
  expectShardInvariant(tinyTestWorkload(), /*Seed=*/7, {1, 2, 4, 7});
}

TEST(ShardedReplayTest, MediumWorkloadIdenticalAcrossShardCounts) {
  expectShardInvariant(mediumTestWorkload(), /*Seed=*/1234, {1, 2, 4, 7});
}

TEST(ShardedReplayTest, ScaledPaperWorkloadIdenticalAcrossShardCounts) {
  // A paper workload shape (many threads, volatiles, planted races) at a
  // test-friendly scale.
  WorkloadSpec Spec = scaleWorkload(paperWorkloads()[0], 0.05);
  expectShardInvariant(Spec, /*Seed=*/99, {2, 7});
}

TEST(ShardedReplayTest, ShardCountBeyondVariableCountStillIdentical) {
  // More shards than the tiny workload has variables: some replicas own
  // nothing but must still replay synchronization identically.
  CompiledWorkload Workload(tinyTestWorkload());
  DetectorSetup Sequential = fastTrackSetup();
  TrialResult Baseline = runTrial(Workload, Sequential, /*Seed=*/3);
  DetectorSetup Sharded = Sequential;
  Sharded.Shards = 64;
  expectSameResult(Baseline, runTrial(Workload, Sharded, /*Seed=*/3));
}

TEST(ShardedReplayTest, ShardJobsInvariance) {
  // The worker count must never leak into results: one worker, one per
  // shard, and an oversubscribed pool all match.
  CompiledWorkload Workload(mediumTestWorkload());
  DetectorSetup Setup = pacerSetup(0.03);
  Setup.Sampling.PeriodBytes = 12 * 1024;
  Setup.Shards = 4;

  Setup.ShardJobs = 1;
  TrialResult OneJob = runTrial(Workload, Setup, /*Seed=*/21);
  Setup.ShardJobs = 0; // Auto: one job per shard.
  TrialResult AutoJobs = runTrial(Workload, Setup, /*Seed=*/21);
  Setup.ShardJobs = 9;
  TrialResult ManyJobs = runTrial(Workload, Setup, /*Seed=*/21);

  expectSameResult(OneJob, AutoJobs);
  expectSameResult(OneJob, ManyJobs);
}

TEST(ShardedReplayTest, ElidedLocalAccessesShardIdentically) {
  // The escape-analysis pre-filter and sharding compose: same races and
  // stats whether or not local accesses are elided first.
  CompiledWorkload Workload(mediumTestWorkload());
  DetectorSetup Setup = fastTrackSetup();
  Setup.ElideLocalAccesses = true;
  TrialResult Baseline = runTrial(Workload, Setup, /*Seed=*/17);
  Setup.Shards = 4;
  expectSameResult(Baseline, runTrial(Workload, Setup, /*Seed=*/17));
}

//===----------------------------------------------------------------------===//
// Direct shardedReplay engine comparisons
//===----------------------------------------------------------------------===//

namespace {

void expectSameShardedResult(const ShardedReplayResult &A,
                             const ShardedReplayResult &B) {
  ASSERT_EQ(A.Races.size(), B.Races.size());
  for (const auto &[Key, Count] : A.Races) {
    auto It = B.Races.find(Key);
    ASSERT_TRUE(It != B.Races.end()) << "race key missing";
    EXPECT_EQ(Count, It->second);
  }
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces);
  expectSameStats(A.Stats, B.Stats);
  EXPECT_EQ(A.FinalMetadataBytes, B.FinalMetadataBytes);
  EXPECT_EQ(A.EffectiveAccessRate, B.EffectiveAccessRate);
  EXPECT_EQ(A.EffectiveSyncRate, B.EffectiveSyncRate);
  EXPECT_EQ(A.Boundaries, B.Boundaries);
}

ShardedReplayConfig pacerShardConfig(unsigned Shards, uint64_t Seed) {
  ShardedReplayConfig Config;
  Config.Shards = Shards;
  Config.UseController = true;
  Config.Sampling.TargetRate = 0.03;
  Config.Sampling.PeriodBytes = 12 * 1024;
  Config.ControllerSeed = Seed;
  return Config;
}

} // namespace

TEST(ShardedReplayTest, SingleShardIndexedMatchesSequential) {
  // K = 1 through the indexed engine (a caller-supplied index engages it
  // even without real sharding) must equal the plain sequential replay.
  CompiledWorkload Workload(mediumTestWorkload());
  Trace T = generateTrace(Workload, /*Seed=*/31);
  DetectorSetup Setup = pacerSetup(0.03);
  Setup.Sampling.PeriodBytes = 12 * 1024;
  DetectorFactory Factory = [&](RaceSink &Sink) {
    return makeDetector(Setup, Sink, Workload, /*Seed=*/31);
  };

  ShardedReplayConfig Sequential = pacerShardConfig(1, /*Seed=*/31);
  Sequential.UseIndex = false;
  ShardedReplayResult Baseline = shardedReplay(T, Factory, Sequential);

  TraceIndex Index = TraceIndex::build(T, 1);
  ShardedReplayConfig Indexed = pacerShardConfig(1, /*Seed=*/31);
  Indexed.Index = &Index;
  expectSameShardedResult(Baseline, shardedReplay(T, Factory, Indexed));
}

TEST(ShardedReplayTest, PrebuiltIndexMatchesInternalBuild) {
  // Supplying a matching index must be a pure optimization; a mismatched
  // shard count must be ignored (a correct private index built instead).
  CompiledWorkload Workload(mediumTestWorkload());
  Trace T = generateTrace(Workload, /*Seed=*/47);
  DetectorSetup Setup = fastTrackSetup();
  DetectorFactory Factory = [&](RaceSink &Sink) {
    return makeDetector(Setup, Sink, Workload, /*Seed=*/47);
  };

  ShardedReplayConfig Internal;
  Internal.Shards = 4;
  ShardedReplayResult Baseline = shardedReplay(T, Factory, Internal);

  TraceIndex Matching = TraceIndex::build(T, 4);
  ShardedReplayConfig WithIndex = Internal;
  WithIndex.Index = &Matching;
  expectSameShardedResult(Baseline, shardedReplay(T, Factory, WithIndex));

  TraceIndex Mismatched = TraceIndex::build(T, 3);
  ShardedReplayConfig WithWrongIndex = Internal;
  WithWrongIndex.Index = &Mismatched;
  expectSameShardedResult(Baseline,
                          shardedReplay(T, Factory, WithWrongIndex));
}

//===----------------------------------------------------------------------===//
// accessBatch override vs base-class default loop
//===----------------------------------------------------------------------===//

namespace {

/// Wraps a detector so its virtual accessBatch falls back to the base
/// class's per-action loop, bypassing the detector's bulk override.
template <typename Base> class ForceDefaultBatch final : public Base {
public:
  using Base::Base;
  using Detector::accessBatch;
  void accessBatch(std::span<const Action> Batch,
                   const AccessShard &Shard) override {
    this->Detector::accessBatch(Batch, Shard);
  }
};

template <typename Make>
void expectOverrideMatchesDefault(const Trace &T, Make MakePair) {
  CollectingSink SinkA, SinkB;
  auto [Overridden, Defaulted] = MakePair(SinkA, SinkB);

  Runtime RA(*Overridden);
  RA.replay(T);
  Runtime RB(*Defaulted);
  RB.replay(T);

  EXPECT_EQ(SinkA.keys(), SinkB.keys());
  EXPECT_EQ(SinkA.size(), SinkB.size());
  expectSameStats(Overridden->stats(), Defaulted->stats());
  EXPECT_EQ(Overridden->liveMetadataBytes(), Defaulted->liveMetadataBytes());
}

} // namespace

TEST(ShardedReplayTest, PacerBatchOverrideMatchesDefault) {
  CompiledWorkload Workload(mediumTestWorkload());
  Trace T = generateTrace(Workload, /*Seed=*/5);
  expectOverrideMatchesDefault(T, [](RaceSink &A, RaceSink &B) {
    return std::make_pair(std::make_unique<PacerDetector>(A),
                          std::make_unique<ForceDefaultBatch<PacerDetector>>(B));
  });
}

TEST(ShardedReplayTest, FastTrackBatchOverrideMatchesDefault) {
  CompiledWorkload Workload(mediumTestWorkload());
  Trace T = generateTrace(Workload, /*Seed=*/5);
  expectOverrideMatchesDefault(T, [](RaceSink &A, RaceSink &B) {
    return std::make_pair(
        std::make_unique<FastTrackDetector>(A),
        std::make_unique<ForceDefaultBatch<FastTrackDetector>>(B));
  });
}

TEST(ShardedReplayTest, LiteRaceBatchOverrideMatchesDefault) {
  CompiledWorkload Workload(mediumTestWorkload());
  Trace T = generateTrace(Workload, /*Seed=*/5);
  std::vector<MethodId> Sites(Workload.siteToMethod().begin(),
                              Workload.siteToMethod().end());
  expectOverrideMatchesDefault(T, [&](RaceSink &A, RaceSink &B) {
    return std::make_pair(
        std::make_unique<LiteRaceDetector>(A, Sites, /*Seed=*/11),
        std::make_unique<ForceDefaultBatch<LiteRaceDetector>>(B, Sites,
                                                              /*Seed=*/11));
  });
}
