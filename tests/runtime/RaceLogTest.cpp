//===- tests/runtime/RaceLogTest.cpp --------------------------------------==//

#include "runtime/RaceLog.h"

#include <gtest/gtest.h>

using namespace pacer;

static RaceReport report(SiteId First, SiteId Second) {
  RaceReport Report;
  Report.Var = 1;
  Report.FirstSite = First;
  Report.SecondSite = Second;
  return Report;
}

TEST(RaceLogTest, CountsDynamicRaces) {
  RaceLog Log;
  Log.onRace(report(1, 2));
  Log.onRace(report(1, 2));
  Log.onRace(report(3, 4));
  EXPECT_EQ(Log.dynamicCount(), 3u);
  EXPECT_EQ(Log.distinctCount(), 2u);
  EXPECT_EQ(Log.dynamicCount(RaceKey{1, 2}), 2u);
  EXPECT_EQ(Log.dynamicCount(RaceKey{3, 4}), 1u);
  EXPECT_EQ(Log.dynamicCount(RaceKey{9, 9}), 0u);
}

TEST(RaceLogTest, NormalizesSiteOrder) {
  RaceLog Log;
  Log.onRace(report(5, 2));
  Log.onRace(report(2, 5));
  EXPECT_EQ(Log.distinctCount(), 1u);
  EXPECT_EQ(Log.dynamicCount(RaceKey{2, 5}), 2u);
  EXPECT_TRUE(Log.saw(RaceKey{2, 5}));
  EXPECT_FALSE(Log.saw(RaceKey{5, 2})) << "keys are stored normalized";
}

TEST(RaceLogTest, DistinctKeysSorted) {
  RaceLog Log;
  Log.onRace(report(9, 9));
  Log.onRace(report(1, 3));
  Log.onRace(report(1, 2));
  std::vector<RaceKey> Keys = Log.distinctKeys();
  ASSERT_EQ(Keys.size(), 3u);
  EXPECT_TRUE(Keys[0] < Keys[1]);
  EXPECT_TRUE(Keys[1] < Keys[2]);
}

TEST(RaceLogTest, KeepsSampleReports) {
  RaceLog Log;
  for (int I = 0; I < 100; ++I)
    Log.onRace(report(1, 2));
  EXPECT_LE(Log.sampleReports().size(), 32u);
  EXPECT_FALSE(Log.sampleReports().empty());
}

TEST(RaceLogTest, ClearResets) {
  RaceLog Log;
  Log.onRace(report(1, 2));
  Log.clear();
  EXPECT_EQ(Log.dynamicCount(), 0u);
  EXPECT_EQ(Log.distinctCount(), 0u);
  EXPECT_TRUE(Log.sampleReports().empty());
}

TEST(NormalizedKeyTest, OrdersPair) {
  RaceKey Key = normalizedKey(report(7, 3));
  EXPECT_EQ(Key.FirstSite, 3u);
  EXPECT_EQ(Key.SecondSite, 7u);
}
