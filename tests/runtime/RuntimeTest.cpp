//===- tests/runtime/RuntimeTest.cpp --------------------------------------==//

#include "runtime/Runtime.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pacer;
using namespace pacer::test;

namespace {

/// Detector that records every hook invocation as a string.
class RecordingDetector final : public Detector {
public:
  explicit RecordingDetector(RaceSink &Sink) : Detector(Sink) {}
  const char *name() const override { return "recording"; }

  void fork(ThreadId Parent, ThreadId Child) override {
    log("fork", Parent, Child);
  }
  void join(ThreadId Parent, ThreadId Child) override {
    log("join", Parent, Child);
  }
  void acquire(ThreadId Tid, LockId Lock) override {
    log("acq", Tid, Lock);
  }
  void release(ThreadId Tid, LockId Lock) override {
    log("rel", Tid, Lock);
  }
  void volatileRead(ThreadId Tid, VolatileId Vol) override {
    log("vrd", Tid, Vol);
  }
  void volatileWrite(ThreadId Tid, VolatileId Vol) override {
    log("vwr", Tid, Vol);
  }
  void read(ThreadId Tid, VarId Var, SiteId Site) override {
    log("rd", Tid, Var);
  }
  void write(ThreadId Tid, VarId Var, SiteId Site) override {
    log("wr", Tid, Var);
  }
  size_t liveMetadataBytes() const override { return 0; }

  std::vector<std::string> Calls;

private:
  void log(const char *Name, uint32_t A, uint32_t B) {
    Calls.push_back(std::string(Name) + "(" + std::to_string(A) + "," +
                    std::to_string(B) + ")");
  }
};

TEST(RuntimeTest, DispatchRoutesEveryActionKind) {
  NullRaceSink Sink;
  RecordingDetector D(Sink);
  Runtime RT(D);
  RT.replay(TraceBuilder()
                .fork(0, 1)
                .acq(1, 7)
                .read(1, 3)
                .write(1, 3)
                .rel(1, 7)
                .volRead(1, 2)
                .volWrite(1, 2)
                .join(0, 1)
                .take());
  std::vector<std::string> Expected{"fork(0,1)", "acq(1,7)", "rd(1,3)",
                                    "wr(1,3)",   "rel(1,7)", "vrd(1,2)",
                                    "vwr(1,2)",  "join(0,1)"};
  EXPECT_EQ(D.Calls, Expected);
}

TEST(RuntimeTest, ThreadExitNotDispatched) {
  NullRaceSink Sink;
  RecordingDetector D(Sink);
  Runtime RT(D);
  Trace T;
  T.push_back({ActionKind::ThreadExit, 0, InvalidId, InvalidId});
  RT.replay(T);
  EXPECT_TRUE(D.Calls.empty());
}

TEST(RuntimeTest, ControllerDrivesSamplingTransitions) {
  NullRaceSink Sink;
  RecordingDetector D(Sink);
  SamplingConfig Config;
  Config.TargetRate = 1.0;
  Config.PeriodBytes = 40; // Boundary at every action.
  SamplingController Controller(Config, 1);
  Runtime RT(D, &Controller);
  RT.replay(TraceBuilder().read(0, 1).read(0, 1).read(0, 1).take());
  EXPECT_GE(Controller.boundaryCount(), 2u);
  EXPECT_GE(Controller.samplingPeriods(), 3u);
}

TEST(RuntimeTest, StartIsIdempotent) {
  NullRaceSink Sink;
  RecordingDetector D(Sink);
  SamplingConfig Config;
  Config.TargetRate = 1.0;
  SamplingController Controller(Config, 1);
  Runtime RT(D, &Controller);
  RT.start();
  RT.start();
  EXPECT_EQ(Controller.samplingPeriods(), 1u);
}

TEST(RuntimeTest, StepReturnsBoundaryFlag) {
  NullRaceSink Sink;
  RecordingDetector D(Sink);
  SamplingConfig Config;
  Config.TargetRate = 0.0;
  Config.PeriodBytes = 80;
  Config.BaseBytesPerEvent = 40;
  SamplingController Controller(Config, 1);
  Runtime RT(D, &Controller);
  RT.start();
  Action Read{ActionKind::Read, 0, 1, 1};
  EXPECT_FALSE(RT.step(Read));
  EXPECT_TRUE(RT.step(Read)) << "second 40-byte event fills the 80-byte "
                                "nursery";
}

} // namespace
