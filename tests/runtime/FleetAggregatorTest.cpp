//===- tests/runtime/FleetAggregatorTest.cpp ------------------------------==//

#include "runtime/FleetAggregator.h"

#include "harness/TrialRunner.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pacer;

namespace {

RaceReport report(SiteId First, SiteId Second) {
  RaceReport Report;
  Report.Var = 1;
  Report.FirstSite = First;
  Report.SecondSite = Second;
  return Report;
}

TEST(FleetAggregatorTest, CountsInstancesAndRaces) {
  FleetAggregator Fleet(0.1);
  RaceLog LogA, LogB;
  LogA.onRace(report(1, 2));
  LogA.onRace(report(1, 2));
  LogB.onRace(report(3, 4));
  Fleet.addInstance(LogA);
  Fleet.addInstance(LogB);
  Fleet.addInstance(RaceLog()); // Clean run.
  EXPECT_EQ(Fleet.instanceCount(), 3u);
  EXPECT_EQ(Fleet.distinctRaceCount(), 2u);
}

TEST(FleetAggregatorTest, OccurrenceEstimateInvertsSamplingRate) {
  // A race reported by 10 of 100 instances at r = 20% occurs in an
  // estimated 50% of runs.
  FleetAggregator Fleet(0.2);
  for (int Instance = 0; Instance < 100; ++Instance) {
    RaceLog Log;
    if (Instance < 10)
      Log.onRace(report(1, 2));
    Fleet.addInstance(Log);
  }
  std::vector<FleetRaceInfo> Summary = Fleet.summarize();
  ASSERT_EQ(Summary.size(), 1u);
  EXPECT_NEAR(Summary[0].EstimatedOccurrence, 0.5, 1e-9);
  EXPECT_EQ(Summary[0].InstancesReporting, 10u);
  // The CI brackets the observed 10% detection rate.
  EXPECT_LE(Summary[0].DetectionCI.Low, 0.10);
  EXPECT_GE(Summary[0].DetectionCI.High, 0.10);
}

TEST(FleetAggregatorTest, OccurrenceClampedToOne) {
  FleetAggregator Fleet(0.05);
  for (int Instance = 0; Instance < 10; ++Instance) {
    RaceLog Log;
    Log.onRace(report(1, 2));
    Fleet.addInstance(Log); // Every instance reports: o*r estimate > 1.
  }
  EXPECT_DOUBLE_EQ(Fleet.summarize()[0].EstimatedOccurrence, 1.0);
}

TEST(FleetAggregatorTest, SummarySortedByOccurrence) {
  FleetAggregator Fleet(0.5);
  for (int Instance = 0; Instance < 20; ++Instance) {
    RaceLog Log;
    Log.onRace(report(1, 2)); // Every run.
    if (Instance % 4 == 0)
      Log.onRace(report(3, 4)); // Quarter of runs.
    Fleet.addInstance(Log);
  }
  std::vector<FleetRaceInfo> Summary = Fleet.summarize();
  ASSERT_EQ(Summary.size(), 2u);
  EXPECT_EQ(Summary[0].Key, (RaceKey{1, 2}));
  EXPECT_GT(Summary[0].EstimatedOccurrence,
            Summary[1].EstimatedOccurrence);
}

TEST(FleetAggregatorTest, KeepsAnExampleReport) {
  FleetAggregator Fleet(1.0);
  RaceLog Log;
  RaceReport Full = report(9, 4);
  Full.FirstThread = 3;
  Full.SecondThread = 7;
  Log.onRace(Full);
  Fleet.addInstance(Log);
  std::vector<FleetRaceInfo> Summary = Fleet.summarize();
  ASSERT_EQ(Summary.size(), 1u);
  EXPECT_EQ(Summary[0].Example.FirstThread, 3u);
  EXPECT_EQ(Summary[0].Example.SecondThread, 7u);
}

TEST(FleetAggregatorTest, CoverageProbabilityFormula) {
  FleetAggregator Fleet(0.1);
  // o=0.5, r=0.1 => per-instance 0.05; k=10 => 1 - 0.95^10.
  EXPECT_NEAR(Fleet.coverageProbability(0.5, 10),
              1.0 - std::pow(0.95, 10), 1e-12);
  EXPECT_DOUBLE_EQ(Fleet.coverageProbability(0.0, 100), 0.0);
  EXPECT_GT(Fleet.coverageProbability(1.0, 1000), 0.9999);
}

TEST(FleetAggregatorTest, FleetSizeInvertsCoverage) {
  FleetAggregator Fleet(0.02);
  for (double Occurrence : {1.0, 0.3, 0.05}) {
    for (double Confidence : {0.5, 0.9, 0.99}) {
      uint32_t K = Fleet.fleetSizeFor(Occurrence, Confidence);
      ASSERT_GT(K, 0u);
      EXPECT_GE(Fleet.coverageProbability(Occurrence, K), Confidence);
      if (K > 1)
        EXPECT_LT(Fleet.coverageProbability(Occurrence, K - 1), Confidence);
    }
  }
}

TEST(FleetAggregatorTest, FleetSizeDegenerateInputs) {
  FleetAggregator Fleet(0.1);
  EXPECT_EQ(Fleet.fleetSizeFor(0.0, 0.9), 0u) << "never-occurring race";
  EXPECT_EQ(Fleet.fleetSizeFor(0.5, 1.0), 0u) << "certainty unreachable";
  FleetAggregator Full(1.0);
  EXPECT_EQ(Full.fleetSizeFor(1.0, 0.99), 1u) << "certain race, full rate";
}

TEST(FleetAggregatorTest, EffectiveRatesRefineEstimates) {
  // Specified 10% but instances measured 50%: 1 of 10 instances reporting
  // means occurrence 0.1/0.5 = 0.2, not 0.1/0.1 = 1.0.
  FleetAggregator Fleet(0.10);
  for (int Instance = 0; Instance < 10; ++Instance) {
    RaceLog Log;
    if (Instance == 0)
      Log.onRace(report(1, 2));
    Fleet.addInstance(Log, 0.5);
  }
  EXPECT_DOUBLE_EQ(Fleet.meanEffectiveRate(), 0.5);
  std::vector<FleetRaceInfo> Summary = Fleet.summarize();
  EXPECT_NEAR(Summary[0].EstimatedOccurrence, 0.2, 1e-9);
}

TEST(FleetAggregatorTest, EndToEndEstimatesMatchPlantedOccurrence) {
  // Deploy PACER at 25% on a workload whose certain races occur every
  // run; the fleet estimate should land near 1.0 for those races.
  WorkloadSpec Spec = tinyTestWorkload();
  CompiledWorkload Workload(Spec);
  DetectorSetup Setup = pacerSetup(0.25);
  Setup.Sampling.PeriodBytes = 12 * 1024;
  FleetAggregator Fleet(0.25);
  for (uint64_t Instance = 0; Instance < 60; ++Instance) {
    TrialResult Result = runTrial(Workload, Setup, 40000 + Instance);
    RaceLog Log;
    for (const auto &[Key, Count] : Result.Races) {
      RaceReport Report;
      Report.FirstSite = Key.FirstSite;
      Report.SecondSite = Key.SecondSite;
      for (uint64_t I = 0; I < Count; ++I)
        Log.onRace(Report);
    }
    Fleet.addInstance(Log, Result.EffectiveAccessRate);
  }
  std::vector<FleetRaceInfo> Summary = Fleet.summarize();
  ASSERT_GE(Summary.size(), 4u);
  // The top races (the certain ones) should have occurrence estimates
  // well above the rare ones' and near 1.
  EXPECT_GT(Summary[0].EstimatedOccurrence, 0.6);
}

} // namespace
