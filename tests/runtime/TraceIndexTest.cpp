//===- tests/runtime/TraceIndexTest.cpp -----------------------------------==//
//
// The TraceIndex's structural contract -- the sync skeleton reproduces the
// trace's non-access positions and thread first-sight points exactly, and
// the per-shard owned runs are an exact partition of the trace's accesses
// -- plus the SamplingController bulk advance: advanceAccessRun must be
// bit-identical to the per-action beforeAction loop for every run length,
// nursery fill, and sampling state, since the indexed replay path rests
// entirely on that equivalence.
//
//===----------------------------------------------------------------------===//

#include "runtime/SamplingController.h"
#include "runtime/TraceIndex.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace pacer;

namespace {

/// Checks every structural invariant of build(T, Shards) against T.
void expectWellFormedIndex(const Trace &T, unsigned Shards) {
  SCOPED_TRACE("shards=" + std::to_string(Shards));
  TraceIndex Index = TraceIndex::build(T, Shards);
  ASSERT_EQ(Index.shardCount(), Shards == 0 ? 1u : Shards);
  ASSERT_EQ(Index.epochs().size(), Index.events().size() + 1);

  // Replay the skeleton against the trace: every non-access action must
  // appear as a dispatch event, in order; every thread's first action must
  // be preceded by exactly one first-sight event at the same position.
  std::vector<bool> Seen;
  size_t NextEvent = 0;
  for (uint32_t I = 0; I < T.size(); ++I) {
    const Action &A = T[I];
    if (A.Tid >= Seen.size())
      Seen.resize(A.Tid + 1, false);
    if (!Seen[A.Tid]) {
      Seen[A.Tid] = true;
      ASSERT_LT(NextEvent, Index.events().size());
      EXPECT_EQ(Index.events()[NextEvent].Pos, I);
      EXPECT_EQ(Index.events()[NextEvent].BeginTid, A.Tid);
      ++NextEvent;
    }
    if (!isAccessAction(A.Kind)) {
      ASSERT_LT(NextEvent, Index.events().size());
      EXPECT_EQ(Index.events()[NextEvent].Pos, I);
      EXPECT_EQ(Index.events()[NextEvent].BeginTid, InvalidId);
      ++NextEvent;
    }
  }
  EXPECT_EQ(NextEvent, Index.events().size());

  // Epochs tile the trace around the skeleton and hold only accesses.
  for (size_t E = 0; E < Index.epochs().size(); ++E) {
    const TraceIndex::EpochSpan &Ep = Index.epochs()[E];
    ASSERT_LE(Ep.Begin, Ep.End);
    ASSERT_LE(Ep.End, T.size());
    for (uint32_t I = Ep.Begin; I < Ep.End; ++I)
      EXPECT_TRUE(isAccessAction(T[I].Kind));
    if (E < Index.events().size()) {
      EXPECT_LE(Ep.End, Index.events()[E].Pos);
    }
  }

  // Owned runs: sorted, disjoint, inside their epoch, owned by their
  // shard, and -- across shards -- an exact partition of the accesses.
  std::vector<bool> Covered(T.size(), false);
  uint64_t OwnedTotal = 0;
  for (uint32_t S = 0; S < Index.shardCount(); ++S) {
    uint64_t ShardOwned = 0;
    uint32_t PrevEnd = 0;
    for (const TraceIndex::Run &R : Index.runs(S)) {
      ASSERT_LT(R.Begin, R.End);
      ASSERT_GE(R.Begin, PrevEnd) << "runs out of order for shard " << S;
      PrevEnd = R.End;
      ASSERT_LT(R.Epoch, Index.epochs().size());
      EXPECT_GE(R.Begin, Index.epochs()[R.Epoch].Begin);
      EXPECT_LE(R.End, Index.epochs()[R.Epoch].End);
      for (uint32_t I = R.Begin; I < R.End; ++I) {
        ASSERT_TRUE(isAccessAction(T[I].Kind));
        EXPECT_TRUE(AccessShard(S, Index.shardCount()).owns(T[I].Target));
        EXPECT_FALSE(Covered[I]) << "access " << I << " in two runs";
        Covered[I] = true;
      }
      ShardOwned += R.End - R.Begin;
    }
    EXPECT_EQ(ShardOwned, Index.ownedAccessCount(S));
    OwnedTotal += ShardOwned;
  }
  for (uint32_t I = 0; I < T.size(); ++I)
    EXPECT_EQ(Covered[I], isAccessAction(T[I].Kind))
        << "coverage mismatch at " << I;
  EXPECT_EQ(OwnedTotal, Index.accessCount());
  EXPECT_EQ(Index.accessCount(), countTraceAccesses(T));
}

/// Records the exact sbegin/send sequence a controller drives.
class SamplingProbe final : public Detector {
public:
  explicit SamplingProbe(RaceSink &Sink) : Detector(Sink) {}
  const char *name() const override { return "probe"; }
  void fork(ThreadId, ThreadId) override {}
  void join(ThreadId, ThreadId) override {}
  void acquire(ThreadId, LockId) override {}
  void release(ThreadId, LockId) override {}
  void volatileRead(ThreadId, VolatileId) override {}
  void volatileWrite(ThreadId, VolatileId) override {}
  void read(ThreadId, VarId, SiteId) override {}
  void write(ThreadId, VarId, SiteId) override {}
  size_t liveMetadataBytes() const override { return 0; }
  void beginSamplingPeriod() override { Toggles.push_back(+1); }
  void endSamplingPeriod() override { Toggles.push_back(-1); }

  std::vector<int> Toggles;
};

/// Drives two identically seeded controllers over the same schedule of
/// access runs separated by sync actions -- one per action, one in bulk --
/// and demands bit-identical boundaries, toggles, and counters.
void expectBulkAdvanceMatchesLoop(const SamplingConfig &Config,
                                  uint64_t Seed) {
  SamplingController Seq(Config, Seed);
  SamplingController Bulk(Config, Seed);
  NullRaceSink SinkA, SinkB;
  SamplingProbe A(SinkA), B(SinkB);
  Seq.start(A);
  Bulk.start(B);

  std::vector<uint64_t> SeqBoundaries, BulkBoundaries;
  Rng Lengths(Seed ^ 0x52554e53u /*"RUNS"*/);
  uint64_t PosSeq = 0, PosBulk = 0;
  for (int Block = 0; Block < 120; ++Block) {
    const uint64_t N = Lengths.nextInRange(0, 300);

    for (uint64_t I = 0; I < N; ++I) {
      if (Seq.beforeAction(ActionKind::Read, A))
        SeqBoundaries.push_back(PosSeq);
      ++PosSeq;
    }
    if (Seq.beforeAction(ActionKind::Acquire, A))
      SeqBoundaries.push_back(PosSeq);
    ++PosSeq;

    uint64_t Left = N;
    while (Left > 0) {
      const uint64_t Predicted = Bulk.accessRunBoundaryIndex(Left);
      SamplingController::AccessRunAdvance Adv =
          Bulk.advanceAccessRun(Left, B);
      ASSERT_GE(Adv.Consumed, 1u);
      ASSERT_LE(Adv.Consumed, Left);
      ASSERT_EQ(Adv.Boundary, Predicted != 0);
      if (Adv.Boundary)
        ASSERT_EQ(Adv.Consumed, Predicted);
      Left -= Adv.Consumed;
      PosBulk += Adv.Consumed;
      if (Adv.Boundary)
        BulkBoundaries.push_back(PosBulk - 1);
      else
        ASSERT_EQ(Left, 0u) << "only a boundary may end an advance early";
    }
    if (Bulk.beforeAction(ActionKind::Acquire, B))
      BulkBoundaries.push_back(PosBulk);
    ++PosBulk;
  }

  EXPECT_EQ(SeqBoundaries, BulkBoundaries);
  EXPECT_EQ(A.Toggles, B.Toggles);
  EXPECT_EQ(Seq.boundaryCount(), Bulk.boundaryCount());
  EXPECT_EQ(Seq.samplingPeriods(), Bulk.samplingPeriods());
  EXPECT_EQ(Seq.isSampling(), Bulk.isSampling());
  EXPECT_EQ(Seq.effectiveAccessRate(), Bulk.effectiveAccessRate());
  EXPECT_EQ(Seq.effectiveSyncRate(), Bulk.effectiveSyncRate());
}

} // namespace

TEST(TraceIndexTest, WellFormedOnTinyWorkload) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, /*Seed=*/7);
  for (unsigned Shards : {1u, 3u, 4u, 7u})
    expectWellFormedIndex(T, Shards);
}

TEST(TraceIndexTest, WellFormedOnMediumWorkload) {
  CompiledWorkload Workload(mediumTestWorkload());
  Trace T = generateTrace(Workload, /*Seed=*/1234);
  for (unsigned Shards : {1u, 4u, 7u})
    expectWellFormedIndex(T, Shards);
}

TEST(TraceIndexTest, WellFormedOnEmptyAndAccessFreeTraces) {
  expectWellFormedIndex(Trace{}, 4);

  // All-sync trace: every epoch is empty, every shard owns nothing.
  Trace T;
  T.push_back(Action{ActionKind::Acquire, /*Tid=*/0, /*Target=*/0,
                     /*Site=*/0});
  T.push_back(Action{ActionKind::Release, /*Tid=*/0, /*Target=*/0,
                     /*Site=*/0});
  expectWellFormedIndex(T, 3);
}

TEST(TraceIndexTest, BulkControllerAdvanceMatchesPerActionLoop) {
  SamplingConfig Config;
  Config.TargetRate = 0.5;
  Config.PeriodBytes = 4096;
  expectBulkAdvanceMatchesLoop(Config, /*Seed=*/11);
  expectBulkAdvanceMatchesLoop(Config, /*Seed=*/12);

  // Low rate, small periods: frequent boundaries, rare sampling entry.
  Config.TargetRate = 0.03;
  Config.PeriodBytes = 2048;
  expectBulkAdvanceMatchesLoop(Config, /*Seed=*/13);

  // Pathologically small period: a boundary at (nearly) every access,
  // exercising the Need == 0 carry-over path.
  Config.TargetRate = 0.25;
  Config.PeriodBytes = 64;
  expectBulkAdvanceMatchesLoop(Config, /*Seed=*/14);

  // Zero charge: the nursery never fills, runs consume in one call.
  Config.TargetRate = 0.5;
  Config.PeriodBytes = 4096;
  Config.BaseBytesPerEvent = 0;
  Config.MetadataBytesPerSampledAccess = 0;
  expectBulkAdvanceMatchesLoop(Config, /*Seed=*/15);
}

TEST(TraceIndexTest, AutoShardCountScalesWithAccessesAndCaps) {
  EXPECT_EQ(autoShardCount(/*AccessCount=*/0, /*HardwareJobs=*/8), 1u);
  EXPECT_EQ(autoShardCount(32 * 1024 - 1, 8), 1u);
  EXPECT_EQ(autoShardCount(2 * 32 * 1024, 8), 2u);
  EXPECT_EQ(autoShardCount(4 * 32 * 1024, 8), 4u);
  EXPECT_EQ(autoShardCount(1000 * 32 * 1024, 8), 8u); // Hardware cap.
  EXPECT_EQ(autoShardCount(1000 * 32 * 1024, 0), 1u); // Degenerate cap.
}

TEST(TraceIndexTest, ParseAndResolveShardCount) {
  EXPECT_EQ(parseShardCount("auto"), 0u);
  EXPECT_EQ(parseShardCount("4"), 4u);
  EXPECT_EQ(parseShardCount("1"), 1u);
  EXPECT_EQ(parseShardCount(""), 1u);
  EXPECT_EQ(parseShardCount("abc"), 1u);
  EXPECT_EQ(parseShardCount("12x"), 1u);
  EXPECT_EQ(parseShardCount("0"), 1u);
  EXPECT_EQ(parseShardCount("999999"), 4096u);

  EXPECT_EQ(resolveShardCount(5, /*AccessCount=*/0), 5u);
  EXPECT_EQ(resolveShardCount(1, 1 << 30), 1u);
  // Auto resolution delegates to autoShardCount(hardwareJobs()); at least
  // one shard always.
  EXPECT_GE(resolveShardCount(0, 0), 1u);
  EXPECT_GE(resolveShardCount(0, 1 << 30), 1u);
}
