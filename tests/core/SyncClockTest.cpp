//===- tests/core/SyncClockTest.cpp ---------------------------------------==//

#include "core/SyncClock.h"

#include <gtest/gtest.h>

using namespace pacer;

TEST(SyncClockTest, FreshClockIsPrivateBottom) {
  SyncClock C;
  EXPECT_FALSE(C.isShared());
  EXPECT_EQ(C.clock().size(), 0u);
}

TEST(SyncClockTest, ShallowCopySharesPayload) {
  SyncClock Thread, Lock;
  Thread.mutableClock().set(0, 3);
  Thread.setShared();
  Lock.shallowCopyFrom(Thread);
  EXPECT_EQ(Lock.payloadKey(), Thread.payloadKey());
  EXPECT_TRUE(Lock.isShared());
  EXPECT_EQ(Lock.clock().get(0), 3u);
}

TEST(SyncClockTest, DeepCopyKeepsPayloadsDistinct) {
  SyncClock Thread, Lock;
  Thread.mutableClock().set(0, 3);
  uint64_t Clones = 0;
  Lock.deepCopyFrom(Thread, &Clones);
  EXPECT_NE(Lock.payloadKey(), Thread.payloadKey());
  EXPECT_EQ(Lock.clock().get(0), 3u);
  EXPECT_EQ(Clones, 0u) << "private payload needs no clone";
  // Mutating the copy must not affect the source.
  Lock.mutableClock().set(0, 9);
  EXPECT_EQ(Thread.clock().get(0), 3u);
}

TEST(SyncClockTest, DeepCopyIntoSharedPayloadAllocatesFresh) {
  SyncClock Thread, LockA, LockB;
  Thread.mutableClock().set(0, 1);
  Thread.setShared();
  LockA.shallowCopyFrom(Thread);
  // LockA's payload is shared with Thread; a deep copy into LockA must not
  // scribble on the shared payload.
  SyncClock Other;
  Other.mutableClock().set(1, 7);
  uint64_t Clones = 0;
  LockA.deepCopyFrom(Other, &Clones);
  EXPECT_EQ(Clones, 1u);
  EXPECT_NE(LockA.payloadKey(), Thread.payloadKey());
  EXPECT_EQ(Thread.clock().get(1), 0u);
  EXPECT_EQ(LockA.clock().get(1), 7u);
  (void)LockB;
}

TEST(SyncClockTest, CloneIfSharedOnPrivateIsNoop) {
  SyncClock C;
  C.mutableClock().set(0, 2);
  const void *Key = C.payloadKey();
  uint64_t Clones = 0;
  C.cloneIfShared(&Clones);
  EXPECT_EQ(C.payloadKey(), Key);
  EXPECT_EQ(Clones, 0u);
}

TEST(SyncClockTest, CloneIfSharedDetaches) {
  SyncClock Thread, Lock;
  Thread.mutableClock().set(0, 5);
  Thread.setShared();
  Lock.shallowCopyFrom(Thread);
  uint64_t Clones = 0;
  Thread.cloneIfShared(&Clones);
  EXPECT_EQ(Clones, 1u);
  EXPECT_NE(Thread.payloadKey(), Lock.payloadKey());
  EXPECT_FALSE(Thread.isShared()) << "the fresh clone is private";
  EXPECT_TRUE(Lock.isShared()) << "shared payloads stay shared for life";
  // Value preserved across the clone.
  EXPECT_EQ(Thread.clock().get(0), 5u);
  Thread.mutableClock().increment(0);
  EXPECT_EQ(Lock.clock().get(0), 5u) << "mutation no longer visible";
}

TEST(SyncClockTest, ChainedSharing) {
  // Thread releases two locks in a non-sampling period: all three share.
  SyncClock Thread, LockM, LockL;
  Thread.mutableClock().set(0, 4);
  Thread.setShared();
  LockM.shallowCopyFrom(Thread);
  Thread.setShared();
  LockL.shallowCopyFrom(Thread);
  EXPECT_EQ(LockM.payloadKey(), Thread.payloadKey());
  EXPECT_EQ(LockL.payloadKey(), Thread.payloadKey());
}

TEST(SyncClockTest, PayloadBytesReflectClockSize) {
  SyncClock C;
  size_t Before = C.payloadBytes();
  C.mutableClock().set(63, 1);
  EXPECT_GT(C.payloadBytes(), Before);
}

TEST(SyncClockTest, NullCloneCounterAccepted) {
  SyncClock Thread, Lock;
  Thread.setShared();
  Lock.shallowCopyFrom(Thread);
  Lock.cloneIfShared(nullptr);
  Lock.deepCopyFrom(Thread, nullptr);
  SUCCEED();
}
