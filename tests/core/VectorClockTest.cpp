//===- tests/core/VectorClockTest.cpp -------------------------------------==//

#include "core/VectorClock.h"

#include <gtest/gtest.h>

#include <utility>

using namespace pacer;

TEST(VectorClockTest, DefaultIsBottom) {
  VectorClock C;
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.get(0), 0u);
  EXPECT_EQ(C.get(1000), 0u);
}

TEST(VectorClockTest, SetAndGetGrows) {
  VectorClock C;
  C.set(4, 9);
  EXPECT_EQ(C.get(4), 9u);
  EXPECT_EQ(C.get(3), 0u);
  EXPECT_GE(C.size(), 5u);
}

TEST(VectorClockTest, SettingZeroBeyondSizeIsNoop) {
  VectorClock C;
  C.set(10, 0);
  EXPECT_EQ(C.size(), 0u);
}

TEST(VectorClockTest, Increment) {
  VectorClock C;
  C.increment(2);
  C.increment(2);
  EXPECT_EQ(C.get(2), 2u);
  EXPECT_EQ(C.get(0), 0u);
}

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock A, B;
  A.set(0, 3);
  A.set(1, 1);
  B.set(1, 5);
  B.set(2, 2);
  EXPECT_TRUE(A.joinWith(B));
  EXPECT_EQ(A.get(0), 3u);
  EXPECT_EQ(A.get(1), 5u);
  EXPECT_EQ(A.get(2), 2u);
}

TEST(VectorClockTest, JoinReportsNoChangeWhenSubsumed) {
  VectorClock A, B;
  A.set(0, 3);
  A.set(1, 5);
  B.set(0, 2);
  EXPECT_FALSE(A.joinWith(B));
  EXPECT_EQ(A.get(0), 3u);
}

TEST(VectorClockTest, JoinWithSelfEquivalent) {
  VectorClock A;
  A.set(0, 1);
  VectorClock B = A;
  EXPECT_FALSE(A.joinWith(B));
  EXPECT_TRUE(A == B);
}

TEST(VectorClockTest, LeqPartialOrder) {
  VectorClock A, B, C;
  A.set(0, 1);
  B.set(0, 2);
  B.set(1, 1);
  C.set(1, 3);
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
  // Incomparable clocks.
  EXPECT_FALSE(B.leq(C));
  EXPECT_FALSE(C.leq(B));
  // Reflexive.
  EXPECT_TRUE(A.leq(A));
  // Bottom below everything.
  EXPECT_TRUE(VectorClock().leq(A));
}

TEST(VectorClockTest, LeqWithDifferentSizes) {
  VectorClock Short, Long;
  Short.set(0, 1);
  Long.set(0, 1);
  Long.set(5, 7);
  EXPECT_TRUE(Short.leq(Long));
  EXPECT_FALSE(Long.leq(Short));
}

TEST(VectorClockTest, CopyFrom) {
  VectorClock A, B;
  A.set(3, 4);
  B.copyFrom(A);
  EXPECT_TRUE(A == B);
  B.increment(3);
  EXPECT_FALSE(A == B);
}

TEST(VectorClockTest, EqualityIgnoresTrailingZeros) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 1);
  B.set(7, 0); // No-op set.
  A.set(3, 5);
  A.set(3, 0); // Explicit zero stored.
  B.set(3, 0);
  EXPECT_TRUE(A == B);
}

TEST(VectorClockTest, ClearResetsToBottom) {
  VectorClock A;
  A.set(2, 9);
  A.clear();
  EXPECT_EQ(A.get(2), 0u);
  EXPECT_TRUE(A == VectorClock());
}

TEST(VectorClockTest, StrFormat) {
  VectorClock A;
  A.set(1, 2);
  EXPECT_EQ(A.str(), "[0, 2]");
  EXPECT_EQ(VectorClock().str(), "[]");
}

TEST(VectorClockTest, HeapBytesGrowWithSize) {
  VectorClock A;
  EXPECT_EQ(A.heapBytes(), 0u);
  A.set(100, 1);
  EXPECT_GE(A.heapBytes(), 101 * sizeof(uint32_t));
}

TEST(VectorClockTest, InlineClocksOwnNoHeap) {
  VectorClock A;
  for (ThreadId Tid = 0; Tid < VectorClock::InlineCapacity; ++Tid)
    A.set(Tid, Tid + 1);
  EXPECT_EQ(A.heapBytes(), 0u);
  // One component past the inline capacity spills to the heap.
  A.set(VectorClock::InlineCapacity, 99);
  EXPECT_GT(A.heapBytes(), 0u);
  for (ThreadId Tid = 0; Tid < VectorClock::InlineCapacity; ++Tid)
    EXPECT_EQ(A.get(Tid), Tid + 1);
  EXPECT_EQ(A.get(VectorClock::InlineCapacity), 99u);
}

TEST(VectorClockTest, CopyAndMoveAcrossInlineBoundary) {
  VectorClock Small;
  Small.set(2, 7);
  VectorClock Wide;
  Wide.set(50, 3);

  VectorClock CopySmall = Small;
  VectorClock CopyWide = Wide;
  EXPECT_TRUE(CopySmall == Small);
  EXPECT_TRUE(CopyWide == Wide);

  VectorClock MovedWide = std::move(CopyWide);
  EXPECT_TRUE(MovedWide == Wide);
  VectorClock MovedSmall = std::move(CopySmall);
  EXPECT_TRUE(MovedSmall == Small);

  // Wide-to-small assignment and back.
  MovedSmall = Wide;
  EXPECT_TRUE(MovedSmall == Wide);
  MovedWide = Small;
  EXPECT_TRUE(MovedWide == Small);
}

TEST(VectorClockTest, JoinWithShorterClockDoesNotGrow) {
  VectorClock Wide, Narrow;
  Wide.set(20, 4);
  Narrow.set(1, 9);
  size_t Size = Wide.size();
  EXPECT_TRUE(Wide.joinWith(Narrow));
  EXPECT_EQ(Wide.size(), Size); // A shorter Other never extends us.
  EXPECT_EQ(Wide.get(1), 9u);
  EXPECT_EQ(Wide.get(20), 4u);
}

TEST(VectorClockTest, JoinIgnoresTrailingExplicitZeros) {
  VectorClock A, Padded;
  A.set(0, 5);
  Padded.set(0, 1);
  Padded.set(30, 1);
  Padded.set(30, 0); // Explicit zero stored at the tail.
  EXPECT_FALSE(A.joinWith(Padded));
  // Joining against implicit/explicit zeros must not inflate the clock.
  EXPECT_EQ(A.size(), 1u);
  EXPECT_EQ(A.get(0), 5u);
}

TEST(VectorClockTest, JoinGrowsOnlyToLastNonZero) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(3, 2); // Stores [0, 0, 0, 2].
  B.set(40, 7);
  B.set(40, 0); // Trailing explicit zeros beyond index 3.
  EXPECT_TRUE(A.joinWith(B));
  EXPECT_EQ(A.size(), 4u); // Grown to B's last non-zero, not B's size.
  EXPECT_EQ(A.get(3), 2u);
}
