//===- tests/core/VectorClockTest.cpp -------------------------------------==//

#include "core/VectorClock.h"

#include <gtest/gtest.h>

using namespace pacer;

TEST(VectorClockTest, DefaultIsBottom) {
  VectorClock C;
  EXPECT_EQ(C.size(), 0u);
  EXPECT_EQ(C.get(0), 0u);
  EXPECT_EQ(C.get(1000), 0u);
}

TEST(VectorClockTest, SetAndGetGrows) {
  VectorClock C;
  C.set(4, 9);
  EXPECT_EQ(C.get(4), 9u);
  EXPECT_EQ(C.get(3), 0u);
  EXPECT_GE(C.size(), 5u);
}

TEST(VectorClockTest, SettingZeroBeyondSizeIsNoop) {
  VectorClock C;
  C.set(10, 0);
  EXPECT_EQ(C.size(), 0u);
}

TEST(VectorClockTest, Increment) {
  VectorClock C;
  C.increment(2);
  C.increment(2);
  EXPECT_EQ(C.get(2), 2u);
  EXPECT_EQ(C.get(0), 0u);
}

TEST(VectorClockTest, JoinTakesPointwiseMax) {
  VectorClock A, B;
  A.set(0, 3);
  A.set(1, 1);
  B.set(1, 5);
  B.set(2, 2);
  EXPECT_TRUE(A.joinWith(B));
  EXPECT_EQ(A.get(0), 3u);
  EXPECT_EQ(A.get(1), 5u);
  EXPECT_EQ(A.get(2), 2u);
}

TEST(VectorClockTest, JoinReportsNoChangeWhenSubsumed) {
  VectorClock A, B;
  A.set(0, 3);
  A.set(1, 5);
  B.set(0, 2);
  EXPECT_FALSE(A.joinWith(B));
  EXPECT_EQ(A.get(0), 3u);
}

TEST(VectorClockTest, JoinWithSelfEquivalent) {
  VectorClock A;
  A.set(0, 1);
  VectorClock B = A;
  EXPECT_FALSE(A.joinWith(B));
  EXPECT_TRUE(A == B);
}

TEST(VectorClockTest, LeqPartialOrder) {
  VectorClock A, B, C;
  A.set(0, 1);
  B.set(0, 2);
  B.set(1, 1);
  C.set(1, 3);
  EXPECT_TRUE(A.leq(B));
  EXPECT_FALSE(B.leq(A));
  // Incomparable clocks.
  EXPECT_FALSE(B.leq(C));
  EXPECT_FALSE(C.leq(B));
  // Reflexive.
  EXPECT_TRUE(A.leq(A));
  // Bottom below everything.
  EXPECT_TRUE(VectorClock().leq(A));
}

TEST(VectorClockTest, LeqWithDifferentSizes) {
  VectorClock Short, Long;
  Short.set(0, 1);
  Long.set(0, 1);
  Long.set(5, 7);
  EXPECT_TRUE(Short.leq(Long));
  EXPECT_FALSE(Long.leq(Short));
}

TEST(VectorClockTest, CopyFrom) {
  VectorClock A, B;
  A.set(3, 4);
  B.copyFrom(A);
  EXPECT_TRUE(A == B);
  B.increment(3);
  EXPECT_FALSE(A == B);
}

TEST(VectorClockTest, EqualityIgnoresTrailingZeros) {
  VectorClock A, B;
  A.set(0, 1);
  B.set(0, 1);
  B.set(7, 0); // No-op set.
  A.set(3, 5);
  A.set(3, 0); // Explicit zero stored.
  B.set(3, 0);
  EXPECT_TRUE(A == B);
}

TEST(VectorClockTest, ClearResetsToBottom) {
  VectorClock A;
  A.set(2, 9);
  A.clear();
  EXPECT_EQ(A.get(2), 0u);
  EXPECT_TRUE(A == VectorClock());
}

TEST(VectorClockTest, StrFormat) {
  VectorClock A;
  A.set(1, 2);
  EXPECT_EQ(A.str(), "[0, 2]");
  EXPECT_EQ(VectorClock().str(), "[]");
}

TEST(VectorClockTest, HeapBytesGrowWithSize) {
  VectorClock A;
  EXPECT_EQ(A.heapBytes(), 0u);
  A.set(100, 1);
  EXPECT_GE(A.heapBytes(), 101 * sizeof(uint32_t));
}
