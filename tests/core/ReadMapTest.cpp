//===- tests/core/ReadMapTest.cpp -----------------------------------------==//

#include "core/ReadMap.h"

#include <gtest/gtest.h>

#include <vector>

using namespace pacer;

TEST(ReadMapTest, DefaultIsNull) {
  ReadMap R;
  EXPECT_TRUE(R.isNull());
  EXPECT_EQ(R.kind(), ReadMap::Kind::Null);
  EXPECT_EQ(R.size(), 0u);
  EXPECT_EQ(R.heapBytes(), 0u);
}

TEST(ReadMapTest, NullLeqEverything) {
  ReadMap R;
  VectorClock C;
  EXPECT_TRUE(R.leqClock(C));
}

TEST(ReadMapTest, SetEpoch) {
  ReadMap R;
  R.setEpoch(Epoch::make(3, 1), 42);
  EXPECT_TRUE(R.isEpoch());
  EXPECT_EQ(R.size(), 1u);
  EXPECT_EQ(R.epoch(), Epoch::make(3, 1));
  EXPECT_EQ(R.epochSite(), 42u);
}

TEST(ReadMapTest, EpochLeq) {
  ReadMap R;
  R.setEpoch(Epoch::make(3, 1), 42);
  VectorClock C;
  C.set(1, 3);
  EXPECT_TRUE(R.leqClock(C));
  C.set(1, 2);
  EXPECT_FALSE(R.leqClock(C));
}

TEST(ReadMapTest, InflateToMapPreservesEntry) {
  ReadMap R;
  R.setEpoch(Epoch::make(3, 1), 42);
  R.inflateToMap();
  EXPECT_TRUE(R.isMap());
  EXPECT_EQ(R.size(), 1u);
  bool Found = false;
  R.forEach([&](const ReadEntry &Entry) {
    Found = true;
    EXPECT_EQ(Entry.Tid, 1u);
    EXPECT_EQ(Entry.Clock, 3u);
    EXPECT_EQ(Entry.Site, 42u);
  });
  EXPECT_TRUE(Found);
}

TEST(ReadMapTest, SetEntryAddsAndUpdates) {
  ReadMap R;
  R.setEpoch(Epoch::make(1, 0), 10);
  R.inflateToMap();
  R.setEntry(2, 5, 20);
  EXPECT_EQ(R.size(), 2u);
  R.setEntry(2, 6, 21); // Update, not add.
  EXPECT_EQ(R.size(), 2u);
  uint32_t Clock2 = 0;
  R.forEach([&](const ReadEntry &Entry) {
    if (Entry.Tid == 2)
      Clock2 = Entry.Clock;
  });
  EXPECT_EQ(Clock2, 6u);
}

TEST(ReadMapTest, RemoveEntry) {
  ReadMap R;
  R.setEpoch(Epoch::make(1, 0), 10);
  R.inflateToMap();
  R.setEntry(2, 5, 20);
  EXPECT_FALSE(R.removeEntry(0));
  EXPECT_EQ(R.size(), 1u);
  EXPECT_FALSE(R.removeEntry(7)); // Absent tid: no-op, still nonempty.
  EXPECT_TRUE(R.removeEntry(2));
  EXPECT_EQ(R.size(), 0u);
  EXPECT_TRUE(R.isMap()) << "an empty map is still map-kind until cleared";
}

TEST(ReadMapTest, ClearFromAnyState) {
  ReadMap R;
  R.setEpoch(Epoch::make(1, 0), 10);
  R.clear();
  EXPECT_TRUE(R.isNull());

  R.setEpoch(Epoch::make(1, 0), 10);
  R.inflateToMap();
  R.clear();
  EXPECT_TRUE(R.isNull());
  EXPECT_EQ(R.heapBytes(), 0u);
}

TEST(ReadMapTest, MapLeqChecksAllEntries) {
  ReadMap R;
  R.setEpoch(Epoch::make(2, 0), 10);
  R.inflateToMap();
  R.setEntry(1, 4, 11);
  VectorClock C;
  C.set(0, 2);
  C.set(1, 4);
  EXPECT_TRUE(R.leqClock(C));
  C.set(1, 3);
  EXPECT_FALSE(R.leqClock(C));
}

TEST(ReadMapTest, ForEachViolationReportsOnlyConcurrent) {
  ReadMap R;
  R.setEpoch(Epoch::make(2, 0), 10);
  R.inflateToMap();
  R.setEntry(1, 4, 11);
  R.setEntry(2, 1, 12);
  VectorClock C;
  C.set(0, 5); // Covers thread 0.
  C.set(1, 3); // Does not cover thread 1 (4 > 3).
  // Thread 2 absent in C: 1 > 0 violates.
  std::vector<ThreadId> Violators;
  R.forEachViolation(C, [&](const ReadEntry &Entry) {
    Violators.push_back(Entry.Tid);
  });
  ASSERT_EQ(Violators.size(), 2u);
  EXPECT_TRUE((Violators[0] == 1 && Violators[1] == 2) ||
              (Violators[0] == 2 && Violators[1] == 1));
}

TEST(ReadMapTest, EpochViolation) {
  ReadMap R;
  R.setEpoch(Epoch::make(3, 1), 42);
  VectorClock C; // Zero.
  int Count = 0;
  R.forEachViolation(C, [&](const ReadEntry &Entry) {
    ++Count;
    EXPECT_EQ(Entry.Tid, 1u);
    EXPECT_EQ(Entry.Site, 42u);
  });
  EXPECT_EQ(Count, 1);
  // No violation when covered.
  C.set(1, 3);
  R.forEachViolation(C, [&](const ReadEntry &) { FAIL(); });
}

TEST(ReadMapTest, SetEpochDropsMapStorage) {
  ReadMap R;
  R.setEpoch(Epoch::make(1, 0), 1);
  R.inflateToMap();
  R.setEntry(1, 2, 2);
  R.setEpoch(Epoch::make(5, 3), 9);
  EXPECT_TRUE(R.isEpoch());
  EXPECT_EQ(R.size(), 1u);
  EXPECT_EQ(R.heapBytes(), 0u);
}

TEST(ReadMapTest, RemoveThreadFromNullIsNoop) {
  ReadMap R;
  R.removeThread(3);
  EXPECT_TRUE(R.isNull());
}

TEST(ReadMapTest, RemoveThreadClearsMatchingEpoch) {
  ReadMap R;
  R.setEpoch(Epoch::make(4, 3), 9);
  R.removeThread(2);
  EXPECT_TRUE(R.isEpoch()) << "other thread's epoch untouched";
  R.removeThread(3);
  EXPECT_TRUE(R.isNull());
}

TEST(ReadMapTest, RemoveThreadFromMapCollapsesWhenEmpty) {
  ReadMap R;
  R.setEpoch(Epoch::make(1, 0), 1);
  R.inflateToMap();
  R.setEntry(1, 2, 2);
  R.removeThread(0);
  EXPECT_TRUE(R.isMap());
  EXPECT_EQ(R.size(), 1u);
  R.removeThread(1);
  EXPECT_TRUE(R.isNull()) << "empty map collapses to null";
}

TEST(ReadMapTest, HeapBytesNonzeroInMapState) {
  ReadMap R;
  R.setEpoch(Epoch::make(1, 0), 1);
  R.inflateToMap();
  EXPECT_GT(R.heapBytes(), 0u);
}
