//===- tests/core/SlotRecyclerTest.cpp ------------------------------------==//
//
// The SlotRecycler in isolation: external->slot binding, the domination
// precondition on reclamation, dead-snapshot scrubbing, and compaction
// remaps. Detector integration is covered by AccordionClockTest and
// RecyclingEquivalenceTest; here the live-clock and purge callables are
// plain test lambdas.
//
//===----------------------------------------------------------------------===//

#include "core/SlotRecycler.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

/// A recycler plus the per-slot clocks a detector would own.
struct Rig {
  SlotRecycler R;
  std::vector<VectorClock> Clocks;
  std::vector<ThreadId> Purged;

  Rig() { R.enable(); }

  ThreadId map(ThreadId External) {
    SlotRecycler::Mapping M = R.map(External);
    if (M.Slot >= Clocks.size())
      Clocks.resize(M.Slot + 1);
    return M.Slot;
  }

  size_t recycle() {
    return R.recycle(
        [this](ThreadId Slot) -> const VectorClock & { return Clocks[Slot]; },
        [this](ThreadId Slot) {
          Purged.push_back(Slot);
          // Model a detector purge: drop the reclaimed slot's clock and
          // zero its component everywhere.
          Clocks[Slot] = VectorClock();
          for (VectorClock &C : Clocks)
            C.set(Slot, 0);
        });
  }
};

TEST(SlotRecyclerTest, MapBindsDenseSlotsAndLookupFollows) {
  Rig Rig;
  EXPECT_EQ(Rig.map(100), 0u);
  EXPECT_EQ(Rig.map(200), 1u);
  EXPECT_EQ(Rig.map(100), 0u) << "idempotent for a bound external";
  EXPECT_EQ(Rig.R.lookup(200), 1u);
  EXPECT_EQ(Rig.R.lookup(999), InvalidId);
  EXPECT_EQ(Rig.R.externalOf(1), 200u);
}

TEST(SlotRecyclerTest, RecycleWaitsForDominationByEveryLiveClock) {
  Rig Rig;
  ThreadId Main = Rig.map(0);
  ThreadId A = Rig.map(1);
  ThreadId B = Rig.map(2);

  // A retires at clock [_, 5, _]; main has absorbed it (join), B has not.
  VectorClock Final;
  Final.set(A, 5);
  Rig.Clocks[Main].set(A, 5);
  Rig.Clocks[Main].set(Main, 9);
  Rig.R.retire(A, Final);

  EXPECT_EQ(Rig.recycle(), 0u) << "B's clock does not dominate A's final";
  EXPECT_EQ(Rig.R.lookup(1), A) << "still bound while unreclaimed";
  EXPECT_TRUE(Rig.Purged.empty());

  // B catches up (e.g. a lock handoff carried A's segment).
  Rig.Clocks[B].set(A, 5);
  EXPECT_EQ(Rig.recycle(), 1u);
  EXPECT_EQ(Rig.Purged, std::vector<ThreadId>{A});
  EXPECT_EQ(Rig.R.lookup(1), InvalidId);
  EXPECT_EQ(Rig.map(3), A) << "freed slot is reused first";
}

TEST(SlotRecyclerTest, RetirementSnapshotIgnoresPostRetirementBumps) {
  // The join rule bumps the child's clock *after* its last real event;
  // callers snapshot before the bump. Domination must then be reachable.
  Rig Rig;
  ThreadId Main = Rig.map(0);
  ThreadId Child = Rig.map(1);
  VectorClock PreBump;
  PreBump.set(Child, 3);
  Rig.R.retire(Child, PreBump);
  Rig.Clocks[Child].set(Child, 4); // The virtual post-join increment.
  Rig.Clocks[Main].set(Child, 3);  // Main absorbed only the real epochs.
  EXPECT_EQ(Rig.recycle(), 1u);
}

TEST(SlotRecyclerTest, ReclaimScrubsOtherDeadSnapshots) {
  // D1 retires first with a snapshot naming D2's component; then D2 is
  // reclaimed and every live clock's D2 component is purged to zero. D1's
  // snapshot must be scrubbed at that reclaim, or it would compare its
  // stale D2 requirement against the slot's next occupant forever and
  // never be reclaimed.
  Rig Rig;
  ThreadId Main = Rig.map(0);
  ThreadId D1 = Rig.map(1);
  ThreadId D2 = Rig.map(2);

  VectorClock FinalD1;
  FinalD1.set(D1, 4);
  FinalD1.set(D2, 2); // D1 had absorbed D2's segment.
  Rig.R.retire(D1, FinalD1);

  VectorClock FinalD2;
  FinalD2.set(D2, 2);
  Rig.Clocks[Main].set(D2, 2);
  Rig.R.retire(D2, FinalD2);

  // Main dominates D2's snapshot but not D1's (no D1 component yet): one
  // reclaim, and the purge zeroes main's D2 component.
  EXPECT_EQ(Rig.recycle(), 1u);
  EXPECT_EQ(Rig.Purged, std::vector<ThreadId>{D2});

  // Main absorbs D1's real epochs. Its D2 component is 0 now, so only the
  // scrub of D1's snapshot makes domination -- and reclaim -- possible.
  Rig.Clocks[Main].set(D1, 4);
  EXPECT_EQ(Rig.recycle(), 1u);
}

TEST(SlotRecyclerTest, CompactionPacksLiveSlotsOntoDensePrefix) {
  Rig Rig;
  // 20 slots, then retire and reclaim all but main and the last worker.
  ThreadId Main = Rig.map(0);
  Rig.Clocks[Main].set(Main, 1);
  for (ThreadId External = 1; External <= 19; ++External)
    Rig.map(External);
  for (ThreadId External = 1; External <= 18; ++External) {
    ThreadId Slot = Rig.R.lookup(External);
    VectorClock Final;
    Final.set(Slot, 1);
    Rig.Clocks[Main].set(Slot, 1);
    Rig.Clocks[Rig.R.lookup(19)].set(Slot, 1);
    Rig.R.retire(Slot, Final);
  }
  EXPECT_EQ(Rig.recycle(), 18u);
  ASSERT_TRUE(Rig.R.shouldCompact()) << "20 slots, 18 free";

  SlotRemap Remap = Rig.R.compact();
  EXPECT_EQ(Remap.newCount(), 2u);
  EXPECT_EQ(Rig.R.slotCount(), 2u);
  // NewToOld ascends, so in-place gathers are safe.
  ASSERT_EQ(Remap.NewToOld.size(), 2u);
  EXPECT_LT(Remap.NewToOld[0], Remap.NewToOld[1]);
  // Bindings follow the renumbering.
  EXPECT_EQ(Rig.R.lookup(0), Remap.OldToNew[0]);
  EXPECT_EQ(Rig.R.externalOf(Rig.R.lookup(19)), 19u);
  EXPECT_EQ(Rig.R.peakSlotCount(), 20u) << "peak is a high-water mark";
}

TEST(SlotRecyclerTest, ShouldCompactNeedsScaleAndFreedom) {
  Rig Rig;
  for (ThreadId External = 0; External < 8; ++External)
    Rig.map(External);
  EXPECT_FALSE(Rig.R.shouldCompact()) << "below the slot floor";
  SlotRecycler Disabled;
  EXPECT_FALSE(Disabled.shouldCompact());
}

} // namespace
