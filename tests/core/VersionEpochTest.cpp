//===- tests/core/VersionEpochTest.cpp ------------------------------------==//

#include "core/VersionEpoch.h"

#include <gtest/gtest.h>

using namespace pacer;

TEST(VersionEpochTest, BottomPrecedesEverything) {
  VersionVector V;
  EXPECT_TRUE(VersionEpoch::bottom().precedes(V));
  V.set(0, 5);
  EXPECT_TRUE(VersionEpoch::bottom().precedes(V));
}

TEST(VersionEpochTest, TopPrecedesNothing) {
  VersionVector V;
  V.set(0, UINT32_MAX - 1);
  EXPECT_FALSE(VersionEpoch::top().precedes(V));
  EXPECT_TRUE(VersionEpoch::top().isTop());
}

TEST(VersionEpochTest, PrecedesComparesOwnThreadSlot) {
  VersionVector V;
  V.set(2, 4);
  EXPECT_TRUE(VersionEpoch::make(4, 2).precedes(V));
  EXPECT_TRUE(VersionEpoch::make(3, 2).precedes(V));
  EXPECT_FALSE(VersionEpoch::make(5, 2).precedes(V));
  // A different thread's big slot does not help.
  V.set(3, 100);
  EXPECT_FALSE(VersionEpoch::make(5, 2).precedes(V));
}

TEST(VersionEpochTest, DefaultIsBottom) {
  VersionEpoch E;
  EXPECT_EQ(E, VersionEpoch::bottom());
  EXPECT_FALSE(E.isTop());
  EXPECT_EQ(E.version(), 0u);
}

TEST(VersionEpochTest, MakeRoundTrips) {
  VersionEpoch E = VersionEpoch::make(9, 4);
  EXPECT_EQ(E.version(), 9u);
  EXPECT_EQ(E.tid(), 4u);
  EXPECT_FALSE(E.isTop());
}

TEST(VersionEpochTest, Equality) {
  EXPECT_EQ(VersionEpoch::make(1, 2), VersionEpoch::make(1, 2));
  EXPECT_FALSE(VersionEpoch::make(1, 2) == VersionEpoch::make(2, 2));
  EXPECT_FALSE(VersionEpoch::make(1, 2) == VersionEpoch::top());
}

TEST(VersionEpochTest, ZeroVersionOfAnyThreadPrecedes) {
  // Any 0@t is a minimal version epoch.
  VersionVector Empty;
  EXPECT_TRUE(VersionEpoch::make(0, 17).precedes(Empty));
}
