//===- tests/core/EpochTest.cpp -------------------------------------------==//

#include "core/Epoch.h"

#include <gtest/gtest.h>

using namespace pacer;

TEST(EpochTest, DefaultIsNone) {
  Epoch E;
  EXPECT_TRUE(E.isNone());
  EXPECT_EQ(E.clockValue(), 0u);
  EXPECT_EQ(E.tid(), 0u);
  EXPECT_EQ(E, Epoch::none());
}

TEST(EpochTest, MakeRoundTrips) {
  Epoch E = Epoch::make(7, 3);
  EXPECT_EQ(E.clockValue(), 7u);
  EXPECT_EQ(E.tid(), 3u);
  EXPECT_FALSE(E.isNone());
}

TEST(EpochTest, LargeValues) {
  Epoch E = Epoch::make(UINT32_MAX, UINT32_MAX - 1);
  EXPECT_EQ(E.clockValue(), UINT32_MAX);
  EXPECT_EQ(E.tid(), UINT32_MAX - 1);
}

TEST(EpochTest, Equality) {
  EXPECT_EQ(Epoch::make(1, 2), Epoch::make(1, 2));
  EXPECT_NE(Epoch::make(1, 2), Epoch::make(2, 1));
  EXPECT_NE(Epoch::make(1, 2), Epoch::none());
}

TEST(EpochTest, NonePrecedesEverything) {
  VectorClock C;
  EXPECT_TRUE(Epoch::none().precedes(C));
  C.set(5, 10);
  EXPECT_TRUE(Epoch::none().precedes(C));
}

TEST(EpochTest, PrecedesComparesOnlyOwnComponent) {
  VectorClock C;
  C.set(2, 5);
  EXPECT_TRUE(Epoch::make(5, 2).precedes(C));
  EXPECT_TRUE(Epoch::make(4, 2).precedes(C));
  EXPECT_FALSE(Epoch::make(6, 2).precedes(C));
  // Other components are irrelevant.
  C.set(3, 100);
  EXPECT_FALSE(Epoch::make(6, 2).precedes(C));
}

TEST(EpochTest, PrecedesAgainstAbsentComponent) {
  VectorClock C; // All zero.
  EXPECT_FALSE(Epoch::make(1, 9).precedes(C));
  EXPECT_TRUE(Epoch::make(0, 9).precedes(C));
}
