//===- tests/core/ClockKernelsTest.cpp ------------------------------------==//
//
// Differential tests for the word-parallel clock kernels: every SIMD path
// must be bit-identical to a naive scalar reference on randomized inputs,
// including the unaligned lengths and implicit-zero tails VectorClock
// feeds them.
//
//===----------------------------------------------------------------------===//

#include "core/ClockKernels.h"
#include "core/VectorClock.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <vector>

using namespace pacer;

namespace {

// Naive references, written independently of kernels::scalar* so a bug in
// the shared scalar fallback cannot hide itself.
bool refJoinMax(uint32_t *A, const uint32_t *B, size_t N) {
  bool Changed = false;
  for (size_t I = 0; I < N; ++I) {
    if (B[I] > A[I]) {
      A[I] = B[I];
      Changed = true;
    }
  }
  return Changed;
}

bool refAllLeq(const uint32_t *A, const uint32_t *B, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

bool refAllZero(const uint32_t *A, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (A[I] != 0)
      return false;
  return true;
}

std::vector<uint32_t> randomWords(Rng &R, size_t N, uint32_t ZeroOdds) {
  std::vector<uint32_t> Out(N);
  for (uint32_t &W : Out) {
    // Mix in zeros and extremes: ties exercise the "greater, not
    // greater-equal" join edge and values above 2^31 exercise the SSE2
    // signed-compare workaround.
    auto Roll = R.nextBelow(100);
    if (Roll < ZeroOdds)
      W = 0;
    else if (Roll < ZeroOdds + 5)
      W = 0xffffffffu - static_cast<uint32_t>(R.nextBelow(3));
    else
      W = static_cast<uint32_t>(R.next());
  }
  return Out;
}

class ClockKernelsTest : public ::testing::TestWithParam<bool> {
protected:
  void SetUp() override { kernels::setForceScalarForTest(GetParam()); }
  void TearDown() override { kernels::setForceScalarForTest(false); }
};

TEST_P(ClockKernelsTest, JoinMaxMatchesReferenceRandomized) {
  Rng R(1234);
  for (int Round = 0; Round < 500; ++Round) {
    size_t N = R.nextBelow(130); // 0..129 covers every vector remainder.
    std::vector<uint32_t> A = randomWords(R, N, 20);
    std::vector<uint32_t> B = randomWords(R, N, 20);
    std::vector<uint32_t> RefA = A;
    bool RefChanged = refJoinMax(RefA.data(), B.data(), N);
    bool Changed = kernels::joinMax(A.data(), B.data(), N);
    EXPECT_EQ(A, RefA);
    EXPECT_EQ(Changed, RefChanged);
  }
}

TEST_P(ClockKernelsTest, JoinMaxDetectsSingleLaneChange) {
  // A single differing lane must flip Changed wherever it lands in the
  // vector, including the scalar tail.
  for (size_t N : {1u, 4u, 7u, 8u, 9u, 16u, 31u, 64u, 65u}) {
    for (size_t Lane = 0; Lane < N; ++Lane) {
      std::vector<uint32_t> A(N, 10), B(N, 10);
      EXPECT_FALSE(kernels::joinMax(A.data(), B.data(), N));
      B[Lane] = 11;
      EXPECT_TRUE(kernels::joinMax(A.data(), B.data(), N));
      EXPECT_EQ(A[Lane], 11u);
    }
  }
}

TEST_P(ClockKernelsTest, AllLeqMatchesReferenceRandomized) {
  Rng R(99);
  for (int Round = 0; Round < 500; ++Round) {
    size_t N = R.nextBelow(130);
    std::vector<uint32_t> A = randomWords(R, N, 30);
    std::vector<uint32_t> B = A;
    // Half the rounds: perturb one lane either way.
    if (N > 0 && Round % 2 == 0) {
      size_t Lane = R.nextBelow(N);
      if (Round % 4 == 0)
        B[Lane] += 1;
      else if (A[Lane] > 0)
        B[Lane] = A[Lane] - 1;
    }
    EXPECT_EQ(kernels::allLeq(A.data(), B.data(), N),
              refAllLeq(A.data(), B.data(), N));
  }
}

TEST_P(ClockKernelsTest, AllZeroMatchesReferenceRandomized) {
  Rng R(7);
  for (int Round = 0; Round < 300; ++Round) {
    size_t N = R.nextBelow(130);
    std::vector<uint32_t> A(N, 0);
    if (N > 0 && Round % 3 != 0)
      A[R.nextBelow(N)] = 1 + static_cast<uint32_t>(R.nextBelow(5));
    EXPECT_EQ(kernels::allZero(A.data(), N), refAllZero(A.data(), N));
  }
}

TEST_P(ClockKernelsTest, CopyWordsAndTrimTrailingZeros) {
  Rng R(42);
  for (int Round = 0; Round < 200; ++Round) {
    size_t N = R.nextBelow(100);
    std::vector<uint32_t> Src = randomWords(R, N, 10);
    // Zero a random-length tail so trim has something to find.
    size_t Tail = N == 0 ? 0 : R.nextBelow(N + 1);
    for (size_t I = N - Tail; I < N; ++I)
      Src[I] = 0;
    std::vector<uint32_t> Dst(N, 0xdeadbeefu);
    kernels::copyWords(Dst.data(), Src.data(), N);
    EXPECT_EQ(Dst, Src);

    size_t M = kernels::trimTrailingZeros(Src.data(), N);
    EXPECT_LE(M, N);
    for (size_t I = M; I < N; ++I)
      EXPECT_EQ(Src[I], 0u);
    if (M > 0)
      EXPECT_NE(Src[M - 1], 0u);
  }
}

// VectorClock-level differential: joinWith/leq over unequal lengths and
// implicit-zero tails route through the kernels; compare against an
// entry-wise model.
TEST_P(ClockKernelsTest, VectorClockJoinUnequalLengths) {
  Rng R(2026);
  for (int Round = 0; Round < 200; ++Round) {
    auto NA = static_cast<uint32_t>(R.nextBelow(40));
    auto NB = static_cast<uint32_t>(R.nextBelow(40));
    VectorClock A, B;
    std::vector<uint32_t> ModelA(std::max(NA, NB), 0);
    for (uint32_t I = 0; I < NA; ++I) {
      auto V = static_cast<uint32_t>(R.nextBelow(50)); // Zeros likely: tails stay implicit.
      A.set(I, V);
      ModelA[I] = V;
    }
    std::vector<uint32_t> ModelB(std::max(NA, NB), 0);
    for (uint32_t I = 0; I < NB; ++I) {
      auto V = static_cast<uint32_t>(R.nextBelow(50));
      B.set(I, V);
      ModelB[I] = V;
    }
    bool ModelLeq = true;
    for (size_t I = 0; I < ModelA.size(); ++I)
      ModelLeq &= ModelA[I] <= ModelB[I];
    EXPECT_EQ(A.leq(B), ModelLeq);

    bool ModelChanged = false;
    for (size_t I = 0; I < ModelA.size(); ++I) {
      if (ModelB[I] > ModelA[I]) {
        ModelA[I] = ModelB[I];
        ModelChanged = true;
      }
    }
    EXPECT_EQ(A.joinWith(B), ModelChanged);
    for (size_t I = 0; I < ModelA.size(); ++I)
      EXPECT_EQ(A.get(static_cast<ThreadId>(I)), ModelA[I]);
    // Joining again is a no-op: change detection must not re-fire.
    EXPECT_FALSE(A.joinWith(B));
  }
}

INSTANTIATE_TEST_SUITE_P(SimdAndScalar, ClockKernelsTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool> &Info) {
                           return Info.param ? "ForcedScalar" : "ActiveIsa";
                         });

TEST(ClockKernelsIsaTest, ActiveIsaIsNamed) {
  const char *Isa = kernels::activeIsa();
  ASSERT_NE(Isa, nullptr);
  EXPECT_STRNE(Isa, "");
  kernels::setForceScalarForTest(true);
  EXPECT_STREQ(kernels::activeIsa(), "scalar");
  kernels::setForceScalarForTest(false);
}

} // namespace
