//===- tests/core/ClockAlgebraTest.cpp ------------------------------------==//
//
// Algebraic laws of the vector-clock lattice (Appendix A.1) checked over
// randomized clocks: join is the least upper bound of the pointwise
// partial order, so it must be commutative, associative, idempotent,
// monotone, and an upper bound; leq must be a partial order; epochs must
// agree with the clocks they summarize.
//
//===----------------------------------------------------------------------===//

#include "core/Epoch.h"
#include "core/VectorClock.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

VectorClock randomClock(Rng &Random, uint32_t MaxThreads,
                        uint32_t MaxValue) {
  VectorClock Clock;
  uint32_t Entries = static_cast<uint32_t>(Random.nextBelow(MaxThreads + 1));
  for (uint32_t I = 0; I < Entries; ++I)
    Clock.set(static_cast<ThreadId>(Random.nextBelow(MaxThreads)),
              static_cast<uint32_t>(Random.nextBelow(MaxValue + 1)));
  return Clock;
}

VectorClock joined(const VectorClock &A, const VectorClock &B) {
  VectorClock Result;
  Result.copyFrom(A);
  Result.joinWith(B);
  return Result;
}

class ClockAlgebraTest : public ::testing::TestWithParam<uint64_t> {
protected:
  Rng Random{GetParam() * 2654435761ull + 1};
};

TEST_P(ClockAlgebraTest, JoinCommutative) {
  for (int I = 0; I < 50; ++I) {
    VectorClock A = randomClock(Random, 12, 20);
    VectorClock B = randomClock(Random, 12, 20);
    EXPECT_TRUE(joined(A, B) == joined(B, A));
  }
}

TEST_P(ClockAlgebraTest, JoinAssociative) {
  for (int I = 0; I < 50; ++I) {
    VectorClock A = randomClock(Random, 12, 20);
    VectorClock B = randomClock(Random, 12, 20);
    VectorClock C = randomClock(Random, 12, 20);
    EXPECT_TRUE(joined(joined(A, B), C) == joined(A, joined(B, C)));
  }
}

TEST_P(ClockAlgebraTest, JoinIdempotentAndBottomIsIdentity) {
  for (int I = 0; I < 50; ++I) {
    VectorClock A = randomClock(Random, 12, 20);
    EXPECT_TRUE(joined(A, A) == A);
    EXPECT_TRUE(joined(A, VectorClock()) == A);
    EXPECT_TRUE(joined(VectorClock(), A) == A);
  }
}

TEST_P(ClockAlgebraTest, JoinIsLeastUpperBound) {
  for (int I = 0; I < 50; ++I) {
    VectorClock A = randomClock(Random, 12, 20);
    VectorClock B = randomClock(Random, 12, 20);
    VectorClock J = joined(A, B);
    EXPECT_TRUE(A.leq(J));
    EXPECT_TRUE(B.leq(J));
    // Least: any other upper bound dominates the join.
    VectorClock Upper = joined(J, randomClock(Random, 12, 20));
    EXPECT_TRUE(J.leq(Upper));
  }
}

TEST_P(ClockAlgebraTest, LeqIsPartialOrder) {
  for (int I = 0; I < 50; ++I) {
    VectorClock A = randomClock(Random, 12, 20);
    VectorClock B = randomClock(Random, 12, 20);
    VectorClock C = joined(B, randomClock(Random, 12, 20));
    EXPECT_TRUE(A.leq(A)) << "reflexive";
    if (A.leq(B) && B.leq(A))
      EXPECT_TRUE(A == B) << "antisymmetric";
    if (A.leq(B))
      EXPECT_TRUE(A.leq(C)) << "transitive through an upper bound of B";
  }
}

TEST_P(ClockAlgebraTest, JoinReportsChangeExactlyWhenNotLeq) {
  for (int I = 0; I < 50; ++I) {
    VectorClock A = randomClock(Random, 12, 20);
    VectorClock B = randomClock(Random, 12, 20);
    VectorClock Copy;
    Copy.copyFrom(A);
    bool Changed = Copy.joinWith(B);
    EXPECT_EQ(Changed, !B.leq(A))
        << "joinWith's changed flag must match the subsumption test "
           "PACER's Algorithm 11 relies on";
  }
}

TEST_P(ClockAlgebraTest, EpochAgreesWithSingletonClock) {
  for (int I = 0; I < 50; ++I) {
    auto Tid = static_cast<ThreadId>(Random.nextBelow(12));
    auto Value = static_cast<uint32_t>(Random.nextInRange(1, 20));
    Epoch E = Epoch::make(Value, Tid);
    VectorClock Singleton;
    Singleton.set(Tid, Value);
    VectorClock Other = randomClock(Random, 12, 20);
    EXPECT_EQ(E.precedes(Other), Singleton.leq(Other))
        << "the O(1) epoch test must equal the O(n) comparison on the "
           "clock it abbreviates";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClockAlgebraTest,
                         ::testing::Range<uint64_t>(1, 6));

} // namespace
