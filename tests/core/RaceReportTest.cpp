//===- tests/core/RaceReportTest.cpp --------------------------------------==//

#include "core/RaceReport.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace pacer;

static RaceReport sampleReport() {
  RaceReport Report;
  Report.Var = 7;
  Report.FirstKind = AccessKind::Write;
  Report.SecondKind = AccessKind::Read;
  Report.FirstThread = 1;
  Report.SecondThread = 2;
  Report.FirstSite = 100;
  Report.SecondSite = 200;
  return Report;
}

TEST(RaceReportTest, StrNamesEverything) {
  std::string Text = sampleReport().str();
  EXPECT_NE(Text.find("var 7"), std::string::npos);
  EXPECT_NE(Text.find("write"), std::string::npos);
  EXPECT_NE(Text.find("read"), std::string::npos);
  EXPECT_NE(Text.find("site 100"), std::string::npos);
  EXPECT_NE(Text.find("site 200"), std::string::npos);
  EXPECT_NE(Text.find("thread 1"), std::string::npos);
  EXPECT_NE(Text.find("thread 2"), std::string::npos);
}

TEST(RaceReportTest, AccessKindNames) {
  EXPECT_STREQ(accessKindName(AccessKind::Read), "read");
  EXPECT_STREQ(accessKindName(AccessKind::Write), "write");
}

TEST(RaceKeyTest, ExtractedFromReport) {
  RaceKey Key = raceKey(sampleReport());
  EXPECT_EQ(Key.FirstSite, 100u);
  EXPECT_EQ(Key.SecondSite, 200u);
}

TEST(RaceKeyTest, OrderingAndEquality) {
  RaceKey A{1, 2}, B{1, 3}, C{2, 1};
  EXPECT_TRUE(A < B);
  EXPECT_TRUE(A < C);
  EXPECT_TRUE(A == RaceKey({1, 2}));
  EXPECT_FALSE(A == B);
}

TEST(RaceKeyTest, HashUsableInSet) {
  std::unordered_set<RaceKey> Keys;
  Keys.insert({1, 2});
  Keys.insert({1, 2});
  Keys.insert({2, 1});
  EXPECT_EQ(Keys.size(), 2u);
  EXPECT_TRUE(Keys.count(RaceKey{1, 2}));
}

TEST(RaceSinkTest, NullSinkDropsReports) {
  NullRaceSink Sink;
  Sink.onRace(sampleReport());
  SUCCEED();
}
