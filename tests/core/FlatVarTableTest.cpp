//===- tests/core/FlatVarTableTest.cpp ------------------------------------==//

#include "core/FlatVarTable.h"

#include <gtest/gtest.h>

#include <map>
#include <random>

using namespace pacer;

TEST(FlatVarTableTest, EmptyTableOwnsNoHeap) {
  FlatVarTable<int> Table;
  EXPECT_TRUE(Table.empty());
  EXPECT_EQ(Table.size(), 0u);
  EXPECT_EQ(Table.heapBytes(), 0u);
  EXPECT_EQ(Table.find(0), nullptr);
  EXPECT_FALSE(Table.erase(0));
}

TEST(FlatVarTableTest, InsertFindRoundTrip) {
  FlatVarTable<int> Table;
  Table.getOrInsert(7) = 42;
  ASSERT_NE(Table.find(7), nullptr);
  EXPECT_EQ(*Table.find(7), 42);
  EXPECT_EQ(Table.find(8), nullptr);
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_GT(Table.heapBytes(), 0u);
}

TEST(FlatVarTableTest, GetOrInsertIsIdempotent) {
  FlatVarTable<int> Table;
  Table.getOrInsert(3) = 10;
  EXPECT_EQ(Table.getOrInsert(3), 10);
  EXPECT_EQ(Table.size(), 1u);
}

TEST(FlatVarTableTest, EraseMakesRoomAndFindMisses) {
  FlatVarTable<int> Table;
  Table.getOrInsert(1) = 1;
  Table.getOrInsert(2) = 2;
  EXPECT_TRUE(Table.erase(1));
  EXPECT_EQ(Table.find(1), nullptr);
  EXPECT_FALSE(Table.erase(1));
  EXPECT_EQ(Table.size(), 1u);
  ASSERT_NE(Table.find(2), nullptr);
  EXPECT_EQ(*Table.find(2), 2);
}

TEST(FlatVarTableTest, ReinsertAfterEraseReusesTombstone) {
  FlatVarTable<int> Table;
  Table.getOrInsert(5) = 50;
  size_t Bytes = Table.heapBytes();
  for (int Round = 0; Round < 1000; ++Round) {
    EXPECT_TRUE(Table.erase(5));
    Table.getOrInsert(5) = 50 + Round;
  }
  // Discard/re-insert churn of one key must not grow the table.
  EXPECT_EQ(Table.heapBytes(), Bytes);
  EXPECT_EQ(Table.size(), 1u);
  EXPECT_EQ(*Table.find(5), 50 + 999);
}

TEST(FlatVarTableTest, SparseHugeKeys) {
  FlatVarTable<int> Table;
  const VarId Keys[] = {0, 1, 5000000, InvalidId - 2, 123456789};
  int V = 0;
  for (VarId Key : Keys)
    Table.getOrInsert(Key) = V++;
  V = 0;
  for (VarId Key : Keys) {
    ASSERT_NE(Table.find(Key), nullptr) << Key;
    EXPECT_EQ(*Table.find(Key), V++);
  }
  EXPECT_EQ(Table.size(), 5u);
}

TEST(FlatVarTableTest, GrowthKeepsAllEntries) {
  FlatVarTable<uint32_t> Table;
  constexpr uint32_t N = 5000;
  for (uint32_t I = 0; I < N; ++I)
    Table.getOrInsert(I) = I * 3;
  EXPECT_EQ(Table.size(), N);
  for (uint32_t I = 0; I < N; ++I) {
    ASSERT_NE(Table.find(I), nullptr) << I;
    EXPECT_EQ(*Table.find(I), I * 3);
  }
}

TEST(FlatVarTableTest, ForEachVisitsExactlyLiveEntries) {
  FlatVarTable<int> Table;
  for (VarId Key = 0; Key < 20; ++Key)
    Table.getOrInsert(Key) = static_cast<int>(Key);
  for (VarId Key = 0; Key < 20; Key += 2)
    Table.erase(Key);
  std::map<VarId, int> Seen;
  Table.forEach([&](VarId Key, const int &Value) { Seen[Key] = Value; });
  EXPECT_EQ(Seen.size(), 10u);
  for (const auto &[Key, Value] : Seen) {
    EXPECT_EQ(Key % 2, 1u);
    EXPECT_EQ(Value, static_cast<int>(Key));
  }
}

TEST(FlatVarTableTest, EraseIfDropsMatchingEntries) {
  FlatVarTable<int> Table;
  for (VarId Key = 0; Key < 100; ++Key)
    Table.getOrInsert(Key) = static_cast<int>(Key);
  Table.eraseIf([](VarId, int &Value) { return Value % 3 == 0; });
  EXPECT_EQ(Table.size(), 66u); // 100 - 34 multiples of 3.
  for (VarId Key = 0; Key < 100; ++Key)
    EXPECT_EQ(Table.find(Key) != nullptr, Key % 3 != 0) << Key;
}

TEST(FlatVarTableTest, MassEraseReleasesSpace) {
  FlatVarTable<int> Table;
  constexpr VarId N = 2000;
  for (VarId Key = 0; Key < N; ++Key)
    Table.getOrInsert(Key) = 1;
  size_t Full = Table.heapBytes();
  for (VarId Key = 0; Key < N; ++Key)
    Table.erase(Key);
  EXPECT_TRUE(Table.empty());
  EXPECT_LT(Table.heapBytes(), Full / 4); // Discard gives the space back.
  // Still usable after shrinking.
  Table.getOrInsert(5) = 9;
  EXPECT_EQ(*Table.find(5), 9);
}

TEST(FlatVarTableTest, EraseIfShrinksAfterMassDiscard) {
  FlatVarTable<int> Table;
  for (VarId Key = 0; Key < 1000; ++Key)
    Table.getOrInsert(Key) = static_cast<int>(Key);
  size_t Full = Table.heapBytes();
  Table.eraseIf([](VarId Key, int &) { return Key >= 10; });
  EXPECT_EQ(Table.size(), 10u);
  EXPECT_LT(Table.heapBytes(), Full / 4);
  for (VarId Key = 0; Key < 10; ++Key)
    EXPECT_EQ(*Table.find(Key), static_cast<int>(Key));
}

TEST(FlatVarTableTest, ClearKeepsCapacity) {
  FlatVarTable<int> Table;
  for (VarId Key = 0; Key < 50; ++Key)
    Table.getOrInsert(Key) = 1;
  size_t Bytes = Table.heapBytes();
  Table.clear();
  EXPECT_TRUE(Table.empty());
  EXPECT_EQ(Table.heapBytes(), Bytes);
  EXPECT_EQ(Table.find(10), nullptr);
  Table.getOrInsert(10) = 7;
  EXPECT_EQ(*Table.find(10), 7);
}

TEST(FlatVarTableTest, MatchesReferenceMapUnderChurn) {
  FlatVarTable<uint64_t> Table;
  std::map<VarId, uint64_t> Reference;
  std::mt19937 Rng(12345);
  for (int Op = 0; Op < 20000; ++Op) {
    VarId Key = Rng() % 512;
    switch (Rng() % 3) {
    case 0: {
      uint64_t Value = Rng();
      Table.getOrInsert(Key) = Value;
      Reference[Key] = Value;
      break;
    }
    case 1:
      EXPECT_EQ(Table.erase(Key), Reference.erase(Key) == 1);
      break;
    default: {
      auto It = Reference.find(Key);
      uint64_t *Found = Table.find(Key);
      ASSERT_EQ(Found != nullptr, It != Reference.end());
      if (Found)
        EXPECT_EQ(*Found, It->second);
      break;
    }
    }
  }
  EXPECT_EQ(Table.size(), Reference.size());
  size_t Visited = 0;
  Table.forEach([&](VarId Key, const uint64_t &Value) {
    ++Visited;
    auto It = Reference.find(Key);
    ASSERT_NE(It, Reference.end());
    EXPECT_EQ(Value, It->second);
  });
  EXPECT_EQ(Visited, Reference.size());
}
