//===- tests/support/ArenaTest.cpp ----------------------------------------==//
//
// The detector-metadata arena: slab reuse, size-class recycling, the
// thread binding, and the headered free-from-anywhere contract the
// detectors' destruction order relies on.
//
//===----------------------------------------------------------------------===//

#include "support/Arena.h"

#include "support/Topology.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

using namespace pacer;

namespace {

TEST(ArenaTest, AllocateCarvesFromSlabs) {
  Arena A;
  void *P1 = A.allocate(32);
  void *P2 = A.allocate(32);
  ASSERT_NE(P1, nullptr);
  ASSERT_NE(P2, nullptr);
  EXPECT_NE(P1, P2);
  // Blocks are writable and 16-aligned (the header keeps payloads
  // aligned for the SIMD kernels' unaligned-load tolerance tests).
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P1) % 16, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P2) % 16, 0u);
  std::memset(P1, 0xab, 32);
  std::memset(P2, 0xcd, 32);
  EXPECT_EQ(A.slabAllocations(), 1u); // Both fit the first slab.
  Arena::freeBlock(P2);
  Arena::freeBlock(P1);
}

TEST(ArenaTest, FreeListRecyclesSameClass) {
  Arena A;
  void *P = A.allocate(64);
  Arena::freeBlock(P);
  // Same size class: the freed block must come back, not fresh slab space.
  void *Q = A.allocate(64);
  EXPECT_EQ(P, Q);
  Arena::freeBlock(Q);
  uint64_t Slabs = A.slabAllocations();
  // A long alloc/free cycle must not grow the slab footprint.
  for (int I = 0; I < 10000; ++I)
    Arena::freeBlock(A.allocate(64));
  EXPECT_EQ(A.slabAllocations(), Slabs);
}

TEST(ArenaTest, OversizeBlocksGetDedicatedSlabs) {
  Arena A;
  size_t Big = size_t(1) << 20; // Larger than the default slab.
  void *P = A.allocate(Big);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x5a, Big);
  EXPECT_GE(A.slabBytes(), Big);
  Arena::freeBlock(P);
  // Recycled through the free list, like any other class.
  EXPECT_EQ(A.allocate(Big), P);
}

TEST(ArenaTest, ScopeBindsAndNests) {
  EXPECT_EQ(Arena::current(), nullptr);
  Arena Outer, Inner;
  {
    Arena::Scope S1(&Outer);
    EXPECT_EQ(Arena::current(), &Outer);
    {
      Arena::Scope S2(&Inner);
      EXPECT_EQ(Arena::current(), &Inner);
      void *P = Arena::allocBlock(24);
      EXPECT_GT(Inner.blockAllocations(), 0u);
      EXPECT_EQ(Outer.blockAllocations(), 0u);
      Arena::freeBlock(P);
    }
    EXPECT_EQ(Arena::current(), &Outer);
    {
      Arena::Scope S3(nullptr); // Explicitly unbound.
      EXPECT_EQ(Arena::current(), nullptr);
    }
    EXPECT_EQ(Arena::current(), &Outer);
  }
  EXPECT_EQ(Arena::current(), nullptr);
}

TEST(ArenaTest, UnboundAllocBlockFallsBackToHeap) {
  ASSERT_EQ(Arena::current(), nullptr);
  void *P = Arena::allocBlock(40);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0x11, 40);
  Arena::freeBlock(P); // Header dispatch: plain heap free, no arena.
}

TEST(ArenaTest, BlocksFreeFromAnyContext) {
  // A block allocated under one binding must free correctly while a
  // *different* arena (or none) is bound -- this is what detector member
  // destructors do.
  Arena A, B;
  void *P;
  {
    Arena::Scope SA(&A);
    P = Arena::allocBlock(64);
  }
  {
    Arena::Scope SB(&B);
    Arena::freeBlock(P); // Routed to A via the header, not to B.
  }
  {
    Arena::Scope SA(&A);
    EXPECT_EQ(Arena::allocBlock(64), P); // A's free list has it.
  }
}

TEST(ArenaTest, ResetKeepsSlabsAndRecyclesEverything) {
  Arena A;
  std::vector<void *> Blocks;
  for (int I = 0; I < 100; ++I)
    Blocks.push_back(A.allocate(128));
  size_t Footprint = A.slabBytes();
  uint64_t Slabs = A.slabAllocations();
  A.reset(); // All 100 blocks are dead: reset is legal.
  EXPECT_EQ(A.slabBytes(), Footprint);
  // The same demand is now served entirely from recycled slab space.
  for (int I = 0; I < 100; ++I)
    ASSERT_NE(A.allocate(128), nullptr);
  EXPECT_EQ(A.slabAllocations(), Slabs);
}

TEST(ArenaTest, ArenaAllocatorVectorUsesBoundArena) {
  Arena A;
  {
    Arena::Scope S(&A);
    std::vector<int, ArenaAllocator<int>> V;
    for (int I = 0; I < 1000; ++I)
      V.push_back(I);
    EXPECT_GT(A.blockAllocations(), 0u);
    for (int I = 0; I < 1000; ++I)
      ASSERT_EQ(V[I], I);
  } // V destroyed inside the scope; blocks return to A.
}

TEST(ArenaTest, ArenaAllocatorVectorOutlivesScope) {
  // The detector pattern: the container is destroyed after the entry
  // point's scope ended (during ~Detector), with the arena still alive.
  Arena A;
  {
    std::vector<int, ArenaAllocator<int>> V;
    {
      Arena::Scope S(&A);
      V.assign(512, 7);
    }
    EXPECT_EQ(V.size(), 512u);
    EXPECT_EQ(V[511], 7);
  } // Destruction happens unbound; header routes the block back to A.
  void *P = A.allocate(512 * sizeof(int));
  EXPECT_NE(P, nullptr); // Arena still coherent.
  Arena::freeBlock(P);
}

TEST(ArenaTest, SlabsFollowAllocationNodeOverride) {
  // With no node resolved, slabs are plain heap memory.
  ASSERT_EQ(topo::currentAllocationNode(), -1);
  {
    Arena Plain;
    void *P = Plain.allocate(64);
    ASSERT_NE(P, nullptr);
    EXPECT_EQ(Plain.nodePlacedSlabs(), 0u);
    Arena::freeBlock(P);
  }
  // With the override set (the bench/test seam), every fresh slab goes
  // through placement (mbind best-effort + first-touch) and is counted.
  // Node 0 always exists, so the memory stays usable either way.
  topo::setAllocationNodeOverride(0);
  {
    Arena Placed;
    void *P = Placed.allocate(64);
    ASSERT_NE(P, nullptr);
    EXPECT_GE(Placed.nodePlacedSlabs(), 1u);
    std::memset(P, 0x5a, 64);
    EXPECT_EQ(static_cast<unsigned char *>(P)[63], 0x5a);
    Arena::freeBlock(P);
  }
  topo::setAllocationNodeOverride(-1);
}

} // namespace
