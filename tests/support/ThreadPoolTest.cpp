//===- tests/support/ThreadPoolTest.cpp -----------------------------------==//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

using namespace pacer;

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.workerCount(), 0u);
  std::vector<size_t> Seen;
  Pool.run(5, [&](size_t I) { Seen.push_back(I); });
  // Inline execution is the serial loop: in order, on the calling thread.
  EXPECT_EQ(Seen, (std::vector<size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EmptyBatchIsANoop) {
  ThreadPool Pool(2);
  std::atomic<int> Calls{0};
  Pool.run(0, [&](size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  ThreadPool Pool(3);
  constexpr size_t Count = 1000; // Far more tasks than threads.
  std::vector<std::atomic<int>> Hits(Count);
  Pool.run(Count, [&](size_t I) { Hits[I].fetch_add(1); });
  for (size_t I = 0; I != Count; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool Pool(2);
  for (int Round = 0; Round < 20; ++Round) {
    std::atomic<size_t> Sum{0};
    Pool.run(10, [&](size_t I) { Sum.fetch_add(I + 1); });
    EXPECT_EQ(Sum.load(), 55u) << "round " << Round;
  }
}

TEST(ThreadPoolTest, MoreWorkersThanTasks) {
  ThreadPool Pool(8);
  std::vector<std::atomic<int>> Hits(2);
  Pool.run(2, [&](size_t I) { Hits[I].fetch_add(1); });
  EXPECT_EQ(Hits[0].load(), 1);
  EXPECT_EQ(Hits[1].load(), 1);
}

TEST(ParallelForTest, JobsOneIsSerialInOrder) {
  std::vector<size_t> Seen;
  parallelFor(1, 4, [&](size_t I) { Seen.push_back(I); });
  EXPECT_EQ(Seen, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST(ParallelForTest, EmptyRange) {
  std::atomic<int> Calls{0};
  parallelFor(4, 0, [&](size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 0);
}

TEST(ParallelForTest, SingleElementRunsInline) {
  std::atomic<int> Calls{0};
  parallelFor(4, 1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    Calls.fetch_add(1);
  });
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ParallelMapTest, ResultsLandInIndexOrder) {
  std::vector<int> Result =
      parallelMap(4, 100, [](size_t I) { return static_cast<int>(I * I); });
  ASSERT_EQ(Result.size(), 100u);
  for (size_t I = 0; I != Result.size(); ++I)
    EXPECT_EQ(Result[I], static_cast<int>(I * I));
}

TEST(ParallelMapTest, MatchesSerialAggregation) {
  auto Square = [](size_t I) { return static_cast<double>(I) * 1.5; };
  std::vector<double> Serial = parallelMap(1, 257, Square);
  std::vector<double> Parallel = parallelMap(4, 257, Square);
  EXPECT_EQ(Serial, Parallel);
}

#if defined(__cpp_exceptions)
TEST(ThreadPoolTest, LowestFailingIndexPropagates) {
  ThreadPool Pool(3);
  EXPECT_THROW(
      Pool.run(100,
               [](size_t I) {
                 if (I >= 40)
                   throw std::runtime_error("task failed");
               }),
      std::runtime_error);
  // The pool survives a throwing batch.
  std::atomic<int> Calls{0};
  Pool.run(5, [&](size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 5);
}
#endif

TEST(DefaultJobsTest, UnsetEnvMeansSerial) {
  // The test binary runs without PACER_JOBS in CI; when a developer sets
  // it, accept any clamped value rather than fail their environment.
  const char *Env = std::getenv("PACER_JOBS");
  unsigned Jobs = defaultJobs();
  if (!Env || !*Env)
    EXPECT_EQ(Jobs, 1u);
  EXPECT_GE(Jobs, 1u);
  EXPECT_LE(Jobs, 256u);
}

TEST(HardwareJobsTest, AtLeastOne) { EXPECT_GE(hardwareJobs(), 1u); }
