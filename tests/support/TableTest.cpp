//===- tests/support/TableTest.cpp ----------------------------------------==//

#include "support/Table.h"

#include <gtest/gtest.h>

using namespace pacer;

TEST(TableTest, RendersHeaderAndRows) {
  TextTable T;
  T.setHeader({"prog", "r=1%", "r=3%"});
  T.addRow({"eclipse", "1.0", "3.0"});
  T.addRow({"xalan", "0.9", "3.1"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("prog"), std::string::npos);
  EXPECT_NE(Out.find("eclipse"), std::string::npos);
  EXPECT_NE(Out.find("3.1"), std::string::npos);
  // Header separator present.
  EXPECT_NE(Out.find("---"), std::string::npos);
}

TEST(TableTest, ColumnsAligned) {
  TextTable T;
  T.setHeader({"a", "value"});
  T.addRow({"longname", "1"});
  T.addRow({"x", "22"});
  std::string Out = T.render();
  // Each line's "value"-column content ends at the same offset: compare
  // line lengths of the two data rows (right-aligned numbers).
  size_t FirstNl = Out.find('\n');
  size_t SecondNl = Out.find('\n', FirstNl + 1);
  size_t ThirdNl = Out.find('\n', SecondNl + 1);
  size_t FourthNl = Out.find('\n', ThirdNl + 1);
  std::string Row1 = Out.substr(SecondNl + 1, ThirdNl - SecondNl - 1);
  std::string Row2 = Out.substr(ThirdNl + 1, FourthNl - ThirdNl - 1);
  EXPECT_EQ(Row1.size(), Row2.size());
}

TEST(TableTest, SeparatorRow) {
  TextTable T;
  T.addRow({"a"});
  T.addSeparator();
  T.addRow({"b"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("-"), std::string::npos);
}

TEST(TableTest, RaggedRowsRenderEmptyCells) {
  TextTable T;
  T.setHeader({"a", "b", "c"});
  T.addRow({"x"});
  std::string Out = T.render();
  EXPECT_NE(Out.find('x'), std::string::npos);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(FormatTest, FormatPlusMinus) {
  EXPECT_EQ(formatPlusMinus(1.0, 0.2, 1), "1.0±0.2");
}

TEST(FormatTest, FormatThousands) {
  EXPECT_EQ(formatThousands(0), "0");
  EXPECT_EQ(formatThousands(999), "<1K");
  EXPECT_EQ(formatThousands(1000), "1K");
  EXPECT_EQ(formatThousands(149376000), "149376K");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(formatPercent(0.03, 0), "3%");
  EXPECT_EQ(formatPercent(0.525, 1), "52.5%");
}
