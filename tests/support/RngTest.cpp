//===- tests/support/RngTest.cpp ------------------------------------------==//

#include "support/Rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

using namespace pacer;

TEST(RngTest, SameSeedSameStream) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng A(1), B(2);
  int Equal = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng A(7);
  uint64_t First = A.next();
  A.next();
  A.reseed(7);
  EXPECT_EQ(A.next(), First);
}

TEST(RngTest, NextBelowInBounds) {
  Rng R(3);
  for (uint64_t Bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng R(11);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 400; ++I)
    Seen.insert(R.nextBelow(8));
  EXPECT_EQ(Seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng R(5);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 500; ++I) {
    uint64_t V = R.nextInRange(3, 5);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 5u);
    SawLo |= V == 3;
    SawHi |= V == 5;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, NextBoolRoughProbability) {
  Rng R(13);
  int Hits = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Hits += R.nextBool(0.3);
  double P = static_cast<double>(Hits) / N;
  EXPECT_NEAR(P, 0.3, 0.02);
}

TEST(RngTest, NextBoolExtremes) {
  Rng R(17);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBool(0.0));
    EXPECT_TRUE(R.nextBool(1.0));
  }
}

TEST(RngTest, GeometricMeanApproximatesExpectation) {
  Rng R(19);
  double Sum = 0;
  const int N = 20000;
  for (int I = 0; I < N; ++I)
    Sum += static_cast<double>(R.nextGeometric(0.25));
  // E[failures before success] = (1-p)/p = 3.
  EXPECT_NEAR(Sum / N, 3.0, 0.25);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng R(23);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Orig = V;
  R.shuffle(V);
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(RngTest, PickReturnsElement) {
  Rng R(29);
  std::vector<int> V{10, 20, 30};
  for (int I = 0; I < 50; ++I) {
    int X = R.pick(V);
    EXPECT_TRUE(X == 10 || X == 20 || X == 30);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng A(31);
  Rng B = A.split();
  // The child must not replay the parent's stream.
  Rng A2(31);
  A2.split();
  int Equal = 0;
  for (int I = 0; I < 64; ++I)
    if (A.next() == B.next())
      ++Equal;
  EXPECT_LT(Equal, 2);
}

//===----------------------------------------------------------------------===//
// deriveTrialSeed: the per-trial seed audit (no stream overlap)
//===----------------------------------------------------------------------===//

TEST(RngTest, DerivedTrialSeedsAllDistinct) {
  // 10k trials from one experiment seed must land on 10k distinct seeds,
  // and must not collide with a neighbouring base seed's family -- the
  // failure mode of the old BaseSeed + f(trial) scheme, where base seeds
  // 100 and 101 shared all but one of their trial seeds.
  std::set<uint64_t> Seeds;
  for (uint64_t Trial = 0; Trial < 10000; ++Trial) {
    Seeds.insert(deriveTrialSeed(100, Trial));
    Seeds.insert(deriveTrialSeed(101, Trial));
  }
  EXPECT_EQ(Seeds.size(), 20000u);
}

TEST(RngTest, DerivedTrialSeedStreamsDoNotOverlap) {
  // The first draw of every derived trial stream must be unique across
  // 10k trials: consecutive xoshiro seeds would fail this immediately if
  // the derivation did not avalanche the trial index.
  std::set<uint64_t> FirstDraws;
  for (uint64_t Trial = 0; Trial < 10000; ++Trial) {
    Rng R(deriveTrialSeed(12345, Trial));
    FirstDraws.insert(R.next());
  }
  EXPECT_EQ(FirstDraws.size(), 10000u);
}

TEST(RngTest, DerivedTrialSeedSaltSeparatesFamilies) {
  // Ground-truth and detection trials share a base seed but must draw
  // from disjoint seed families.
  std::set<uint64_t> Seeds;
  for (uint64_t Trial = 0; Trial < 1000; ++Trial) {
    Seeds.insert(deriveTrialSeed(42, Trial));
    Seeds.insert(deriveTrialSeed(42, Trial, 0x44455443ull));
  }
  EXPECT_EQ(Seeds.size(), 2000u);
}

TEST(RngTest, DerivedTrialSeedIsDeterministic) {
  EXPECT_EQ(deriveTrialSeed(7, 3), deriveTrialSeed(7, 3));
  EXPECT_NE(deriveTrialSeed(7, 3), deriveTrialSeed(7, 4));
  EXPECT_NE(deriveTrialSeed(7, 3), deriveTrialSeed(8, 3));
  EXPECT_NE(deriveTrialSeed(7, 3, 1), deriveTrialSeed(7, 3, 2));
}
