//===- tests/support/TopologyTest.cpp -------------------------------------==//
//
// Topology discovery, pin-plan construction, and the placement seams. The
// multi-node shapes are exercised through the pure functions
// (parseCpuList / topologyFromCpuLists / buildPinPlan) so the tests are
// meaningful on the single-node hosts CI runs on; the system-level
// entry points are checked for sanity and graceful degradation.
//
//===----------------------------------------------------------------------===//

#include "support/Topology.h"

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <new>
#include <thread>

using namespace pacer;

namespace {

TEST(CpuListParse, SingleValuesRangesAndMixes) {
  std::vector<unsigned> Cpus;
  ASSERT_TRUE(topo::parseCpuList("5", Cpus));
  EXPECT_EQ(Cpus, (std::vector<unsigned>{5}));

  ASSERT_TRUE(topo::parseCpuList("0-3", Cpus));
  EXPECT_EQ(Cpus, (std::vector<unsigned>{0, 1, 2, 3}));

  ASSERT_TRUE(topo::parseCpuList("0-3,8,10-11\n", Cpus));
  EXPECT_EQ(Cpus, (std::vector<unsigned>{0, 1, 2, 3, 8, 10, 11}));

  // sysfs emits a trailing newline and may emit an empty file for a
  // memoryless node.
  ASSERT_TRUE(topo::parseCpuList("", Cpus));
  EXPECT_TRUE(Cpus.empty());
  ASSERT_TRUE(topo::parseCpuList("\n", Cpus));
  EXPECT_TRUE(Cpus.empty());
}

TEST(CpuListParse, RejectsMalformedText) {
  std::vector<unsigned> Cpus;
  EXPECT_FALSE(topo::parseCpuList("a-b", Cpus));
  EXPECT_FALSE(topo::parseCpuList("3-", Cpus));
  EXPECT_FALSE(topo::parseCpuList("7-3", Cpus)); // Descending range.
  EXPECT_FALSE(topo::parseCpuList("1,x", Cpus));
}

TEST(TopologyBuild, TwoNodeShape) {
  topo::Topology T = topo::topologyFromCpuLists({"0-3", "4-7"}, 8);
  ASSERT_EQ(T.Nodes.size(), 2u);
  EXPECT_TRUE(T.multiNode());
  EXPECT_EQ(T.cpuCount(), 8u);
  EXPECT_EQ(T.Nodes[0].Id, 0u);
  EXPECT_EQ(T.Nodes[1].Id, 1u);
  EXPECT_EQ(T.Nodes[1].Cpus, (std::vector<unsigned>{4, 5, 6, 7}));
}

TEST(TopologyBuild, DropsEmptyAndMalformedNodes) {
  // node1 is memoryless (empty cpulist), node2 unreadable garbage: both
  // must vanish from the topology rather than poison it.
  topo::Topology T = topo::topologyFromCpuLists({"0-1", "", "bad", "2-3"}, 4);
  ASSERT_EQ(T.Nodes.size(), 2u);
  EXPECT_EQ(T.Nodes[0].Id, 0u);
  EXPECT_EQ(T.Nodes[1].Id, 3u); // Node ids survive the compaction.
  EXPECT_EQ(T.Nodes[1].Cpus, (std::vector<unsigned>{2, 3}));
}

TEST(TopologyBuild, SingleNodeFallback) {
  // Nothing usable discovered: one synthetic node covering FallbackCpus.
  topo::Topology T = topo::topologyFromCpuLists({}, 4);
  ASSERT_EQ(T.Nodes.size(), 1u);
  EXPECT_FALSE(T.multiNode());
  EXPECT_EQ(T.Nodes[0].Cpus, (std::vector<unsigned>{0, 1, 2, 3}));

  // Zero-CPU fallback still yields a non-empty topology.
  topo::Topology T0 = topo::topologyFromCpuLists({"", "junk"}, 0);
  ASSERT_EQ(T0.Nodes.size(), 1u);
  EXPECT_EQ(T0.cpuCount(), 1u);
}

TEST(PinPlanBuild, FillsOneNodeBeforeCrossingSockets) {
  topo::Topology T = topo::topologyFromCpuLists({"0,2,4,6", "1,3,5,7"}, 8);
  topo::PinPlan Plan = topo::buildPinPlan(T);
  ASSERT_EQ(Plan.size(), 8u);
  // All of node 0's CPUs come before any of node 1's, regardless of the
  // interleaved numbering.
  const unsigned ExpectedCpus[] = {0, 2, 4, 6, 1, 3, 5, 7};
  const unsigned ExpectedNodes[] = {0, 0, 0, 0, 1, 1, 1, 1};
  for (size_t I = 0; I != Plan.size(); ++I) {
    EXPECT_EQ(Plan[I].Cpu, ExpectedCpus[I]) << "slot " << I;
    EXPECT_EQ(Plan[I].Node, ExpectedNodes[I]) << "slot " << I;
  }
}

TEST(PinPlanBuild, SingleNodeMatchesLegacyRoundRobin) {
  // On one node the plan must reproduce the old Index % hardwareJobs()
  // assignment: slot I -> CPU I, ascending.
  topo::Topology T = topo::topologyFromCpuLists({}, 4);
  topo::PinPlan Plan = topo::buildPinPlan(T);
  ASSERT_EQ(Plan.size(), 4u);
  for (size_t I = 0; I != Plan.size(); ++I) {
    EXPECT_EQ(Plan[I].Cpu, static_cast<unsigned>(I));
    EXPECT_EQ(Plan[I].Node, 0u);
  }
}

TEST(PinPlanBuild, WorkerCountAwareKeepsFillFirstWhenWorkersFitOneNode) {
  topo::Topology T = topo::topologyFromCpuLists({"0-3", "4-7"}, 8);
  // Up to a full node's worth of workers: identical to the oblivious
  // fill-first plan.
  topo::PinPlan Oblivious = topo::buildPinPlan(T);
  for (unsigned Workers : {1u, 2u, 4u}) {
    topo::PinPlan Plan = topo::buildPinPlan(T, Workers);
    ASSERT_EQ(Plan.size(), Oblivious.size()) << "workers " << Workers;
    for (size_t I = 0; I != Plan.size(); ++I) {
      EXPECT_EQ(Plan[I].Cpu, Oblivious[I].Cpu) << "workers " << Workers;
      EXPECT_EQ(Plan[I].Node, Oblivious[I].Node) << "workers " << Workers;
    }
  }
  // Workers == 0 (unknown count) also degrades to the oblivious plan.
  topo::PinPlan Unknown = topo::buildPinPlan(T, 0);
  EXPECT_EQ(Unknown.size(), Oblivious.size());
  EXPECT_EQ(Unknown.front().Cpu, Oblivious.front().Cpu);
}

TEST(PinPlanBuild, WorkerCountAwareStartsAtTheNodeThatFitsThemAll) {
  // Node 0 is too small for 6 workers but node 1 is not: the whole set
  // co-locates on node 1 instead of splitting 4 + 2 across sockets.
  topo::Topology T = topo::topologyFromCpuLists({"0-3", "4-11"}, 12);
  topo::PinPlan Plan = topo::buildPinPlan(T, 6);
  ASSERT_EQ(Plan.size(), 12u);
  for (size_t I = 0; I != 8; ++I) {
    EXPECT_EQ(Plan[I].Cpu, static_cast<unsigned>(4 + I)) << "slot " << I;
    EXPECT_EQ(Plan[I].Node, 1u) << "slot " << I;
  }
  // Node 0's CPUs follow, for threads beyond the worker set.
  EXPECT_EQ(Plan[8].Cpu, 0u);
  EXPECT_EQ(Plan[8].Node, 0u);
}

TEST(PinPlanBuild, WorkerCountAwareBalancesWhenWorkersExceedEveryNode) {
  // 6 workers on 2x4 CPUs: no node fits them, so the plan interleaves --
  // every prefix is within one CPU of evenly spread, where fill-first
  // would put 4 on node 0 and only 2 on node 1.
  topo::Topology T = topo::topologyFromCpuLists({"0-3", "4-7"}, 8);
  topo::PinPlan Plan = topo::buildPinPlan(T, 6);
  ASSERT_EQ(Plan.size(), 8u);
  const unsigned ExpectedCpus[] = {0, 4, 1, 5, 2, 6, 3, 7};
  const unsigned ExpectedNodes[] = {0, 1, 0, 1, 0, 1, 0, 1};
  for (size_t I = 0; I != Plan.size(); ++I) {
    EXPECT_EQ(Plan[I].Cpu, ExpectedCpus[I]) << "slot " << I;
    EXPECT_EQ(Plan[I].Node, ExpectedNodes[I]) << "slot " << I;
  }
  // Unequal nodes: the smaller node exhausts and the larger one keeps
  // supplying slots.
  topo::Topology U = topo::topologyFromCpuLists({"0-1", "2-7"}, 8);
  topo::PinPlan Uneven = topo::buildPinPlan(U, 8);
  ASSERT_EQ(Uneven.size(), 8u);
  const unsigned UnevenCpus[] = {0, 2, 1, 3, 4, 5, 6, 7};
  for (size_t I = 0; I != Uneven.size(); ++I)
    EXPECT_EQ(Uneven[I].Cpu, UnevenCpus[I]) << "slot " << I;
}

TEST(PinPlanBuild, PlanSlotPinningIsBestEffort) {
  // An empty plan refuses without touching affinity or the thread-local.
  topo::PinPlan Empty;
  EXPECT_FALSE(topo::pinCurrentThreadToPlanSlot(Empty, 0));
  // Slot indices wrap; a successful pin records the slot's node. CPU 0
  // exists everywhere, but the pin may still fail under restricted
  // cpusets -- assert only the success half.
  int Saved = topo::currentThreadNode();
  topo::PinPlan One{{0u, 0u}};
  if (topo::pinCurrentThreadToPlanSlot(One, 5))
    EXPECT_EQ(topo::currentThreadNode(), 0);
  topo::setCurrentThreadNode(Saved);
}

TEST(SystemTopology, DiscoversSomethingSane) {
  const topo::Topology &T = topo::systemTopology();
  ASSERT_GE(T.Nodes.size(), 1u);
  EXPECT_GE(T.cpuCount(), 1u);
  const topo::PinPlan &Plan = topo::systemPinPlan();
  EXPECT_EQ(Plan.size(), T.cpuCount());
  EXPECT_FALSE(topo::summary().empty());
  EXPECT_FALSE(topo::planSummary(4).empty());
}

TEST(PlacementSeams, AllocationNodeResolutionOrder) {
  // Default: unpinned thread, no override -> no placement.
  ASSERT_EQ(topo::allocationNodeOverride(), -1);
  EXPECT_EQ(topo::currentAllocationNode(), topo::currentThreadNode());

  // Thread node (set by a successful pin) feeds placement...
  int SavedNode = topo::currentThreadNode();
  topo::setCurrentThreadNode(1);
  EXPECT_EQ(topo::currentAllocationNode(), 1);

  // ...but the process-wide override wins over it.
  topo::setAllocationNodeOverride(0);
  EXPECT_EQ(topo::currentAllocationNode(), 0);
  topo::setAllocationNodeOverride(-1);
  EXPECT_EQ(topo::currentAllocationNode(), 1);
  topo::setCurrentThreadNode(SavedNode);
}

TEST(PlacementSeams, ThreadNodeIsThreadLocal) {
  topo::setCurrentThreadNode(2);
  int Other = -2;
  std::thread T([&] { Other = topo::currentThreadNode(); });
  T.join();
  EXPECT_EQ(Other, -1); // A fresh (unpinned) thread has no node.
  EXPECT_EQ(topo::currentThreadNode(), 2);
  topo::setCurrentThreadNode(-1);
}

TEST(PlacementSeams, BindMemoryToNodeIsBestEffort) {
  // Node 0 exists on every host; the call may still fail (sandboxed
  // seccomp, non-Linux) -- the contract is only "no crash, honest bool",
  // because Arena pairs it with first-touch anyway.
  const size_t Bytes = 4 * topo::pageSize();
  void *Mem = ::operator new(Bytes);
  (void)topo::bindMemoryToNode(Mem, Bytes, 0);
  // Sub-page ranges have no whole page to bind.
  EXPECT_FALSE(topo::bindMemoryToNode(Mem, 8, 0));
  // Nodes beyond any real machine are rejected without a syscall.
  EXPECT_FALSE(topo::bindMemoryToNode(Mem, Bytes, 1u << 20));
  ::operator delete(Mem);
}

TEST(PinnedThreads, WorkerRecordsItsPlanNode) {
  // With pinning forced on, a pool worker that pins successfully must
  // record the plan slot's node in its thread-local. Pinning can
  // legitimately fail (restricted cpuset), in which case the node stays
  // -1 -- assert only the successful-pin half of the contract.
  setThreadPinning(true);
  int WorkerNode = -2;
  parallelFor(2, 2, [&](size_t I) {
    if (I == 1)
      WorkerNode = topo::currentThreadNode();
  });
  setThreadPinning(false);
  const topo::PinPlan &Plan = topo::systemPinPlan();
  if (WorkerNode != -1 && WorkerNode != -2) {
    bool NodeInPlan = false;
    for (const topo::PinSlot &Slot : Plan)
      NodeInPlan |= static_cast<int>(Slot.Node) == WorkerNode;
    EXPECT_TRUE(NodeInPlan);
  }
}

} // namespace
