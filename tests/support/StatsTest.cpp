//===- tests/support/StatsTest.cpp ----------------------------------------==//

#include "support/Stats.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace pacer;

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(S.stderrOfMean(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat S;
  S.add(5.0);
  EXPECT_EQ(S.count(), 1u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.stddev(), 0.0);
}

TEST(RunningStatTest, KnownMeanAndStddev) {
  RunningStat S;
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  // Sample variance with N-1 = 7: sum of squares = 32, so 32/7.
  EXPECT_NEAR(S.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(S.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStatTest, StderrShrinksWithN) {
  RunningStat A, B;
  for (int I = 0; I < 10; ++I)
    A.add(I % 2);
  for (int I = 0; I < 1000; ++I)
    B.add(I % 2);
  EXPECT_GT(A.stderrOfMean(), B.stderrOfMean());
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(QuantileTest, Extremes) {
  std::vector<double> V{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 2.0);
}

TEST(WilsonTest, ContainsPointEstimate) {
  for (uint64_t Successes : {0ull, 5ull, 50ull, 100ull}) {
    BinomialInterval CI = wilsonInterval(Successes, 100, 1.96);
    double PHat = static_cast<double>(Successes) / 100.0;
    EXPECT_LE(CI.Low, PHat + 1e-9);
    EXPECT_GE(CI.High, PHat - 1e-9);
    EXPECT_GE(CI.Low, 0.0);
    EXPECT_LE(CI.High, 1.0);
  }
}

TEST(WilsonTest, ZeroTrialsIsVacuous) {
  BinomialInterval CI = wilsonInterval(0, 0, 1.96);
  EXPECT_DOUBLE_EQ(CI.Low, 0.0);
  EXPECT_DOUBLE_EQ(CI.High, 1.0);
}

TEST(WilsonTest, WiderZGivesWiderInterval) {
  BinomialInterval Narrow = wilsonInterval(30, 100, 1.0);
  BinomialInterval Wide = wilsonInterval(30, 100, 3.0);
  EXPECT_LT(Wide.Low, Narrow.Low);
  EXPECT_GT(Wide.High, Narrow.High);
}

TEST(WilsonTest, ConsistencyCheck) {
  // 30/100 at p=0.3 is consistent; p=0.9 is not.
  EXPECT_TRUE(proportionConsistent(30, 100, 0.3, 1.96));
  EXPECT_FALSE(proportionConsistent(30, 100, 0.9, 1.96));
}

TEST(WilsonTest, ShrinksWithMoreTrials) {
  BinomialInterval Small = wilsonInterval(3, 10, 1.96);
  BinomialInterval Large = wilsonInterval(300, 1000, 1.96);
  EXPECT_GT(Small.High - Small.Low, Large.High - Large.Low);
}
