//===- tests/support/CommandLineTest.cpp ----------------------------------==//

#include "support/CommandLine.h"

#include <gtest/gtest.h>

using namespace pacer;

static FlagSet parse(std::initializer_list<const char *> Args) {
  std::vector<const char *> Argv{"prog"};
  Argv.insert(Argv.end(), Args.begin(), Args.end());
  return FlagSet(static_cast<int>(Argv.size()), Argv.data());
}

TEST(CommandLineTest, IntFlag) {
  FlagSet Flags = parse({"--trials=50"});
  EXPECT_EQ(Flags.getInt("trials", 10), 50);
  EXPECT_EQ(Flags.getInt("absent", 10), 10);
}

TEST(CommandLineTest, DoubleFlag) {
  FlagSet Flags = parse({"--rate=0.03"});
  EXPECT_DOUBLE_EQ(Flags.getDouble("rate", 1.0), 0.03);
  EXPECT_DOUBLE_EQ(Flags.getDouble("absent", 1.5), 1.5);
}

TEST(CommandLineTest, StringFlag) {
  FlagSet Flags = parse({"--workload=xalan"});
  EXPECT_EQ(Flags.getString("workload", "eclipse"), "xalan");
  EXPECT_EQ(Flags.getString("absent", "eclipse"), "eclipse");
}

TEST(CommandLineTest, BoolFlag) {
  FlagSet Flags = parse({"--verbose", "--quiet=0", "--slow=false"});
  EXPECT_TRUE(Flags.getBool("verbose", false));
  EXPECT_FALSE(Flags.getBool("quiet", true));
  EXPECT_FALSE(Flags.getBool("slow", true));
  EXPECT_TRUE(Flags.getBool("absent", true));
}

TEST(CommandLineTest, Positional) {
  FlagSet Flags = parse({"alpha", "--x=1", "beta"});
  ASSERT_EQ(Flags.positional().size(), 2u);
  EXPECT_EQ(Flags.positional()[0], "alpha");
  EXPECT_EQ(Flags.positional()[1], "beta");
}

TEST(CommandLineTest, LastOccurrenceWins) {
  FlagSet Flags = parse({"--n=1", "--n=2"});
  EXPECT_EQ(Flags.getInt("n", 0), 2);
}

TEST(CommandLineTest, Has) {
  FlagSet Flags = parse({"--present=x"});
  EXPECT_TRUE(Flags.has("present"));
  EXPECT_FALSE(Flags.has("absent"));
}

TEST(CommandLineTest, NegativeInt) {
  FlagSet Flags = parse({"--offset=-3"});
  EXPECT_EQ(Flags.getInt("offset", 0), -3);
}

//===----------------------------------------------------------------------===//
// OptionRegistry
//===----------------------------------------------------------------------===//

namespace {

OptionRegistry sampleRegistry() {
  OptionRegistry R("prog [options] FILE...");
  R.addInt("trials", 10, "trial count")
      .addDouble("rate", 0.03, "sampling rate")
      .addString("detector", "pacer", "detector name")
      .addFlag("stats", "print statistics");
  return R;
}

bool parseInto(OptionRegistry &R, std::initializer_list<const char *> Args) {
  std::vector<const char *> Argv{"prog"};
  Argv.insert(Argv.end(), Args.begin(), Args.end());
  return R.parse(static_cast<int>(Argv.size()), Argv.data());
}

} // namespace

TEST(OptionRegistryTest, DefaultsWhenAbsent) {
  OptionRegistry R = sampleRegistry();
  EXPECT_TRUE(parseInto(R, {}));
  EXPECT_EQ(R.getInt("trials"), 10);
  EXPECT_DOUBLE_EQ(R.getDouble("rate"), 0.03);
  EXPECT_EQ(R.getString("detector"), "pacer");
  EXPECT_FALSE(R.getBool("stats"));
}

TEST(OptionRegistryTest, ParsesDeclaredFlags) {
  OptionRegistry R = sampleRegistry();
  EXPECT_TRUE(parseInto(
      R, {"--trials=50", "--rate=0.5", "--detector=literace", "--stats"}));
  EXPECT_EQ(R.getInt("trials"), 50);
  EXPECT_DOUBLE_EQ(R.getDouble("rate"), 0.5);
  EXPECT_EQ(R.getString("detector"), "literace");
  EXPECT_TRUE(R.getBool("stats"));
  EXPECT_TRUE(R.has("trials"));
  EXPECT_FALSE(R.has("rate-absent"));
}

TEST(OptionRegistryTest, RejectsUnknownFlag) {
  OptionRegistry R = sampleRegistry();
  EXPECT_FALSE(parseInto(R, {"--trails=50"})); // Typo must not be silent.
  EXPECT_FALSE(R.helpRequested());
}

TEST(OptionRegistryTest, HelpRequested) {
  OptionRegistry R = sampleRegistry();
  EXPECT_FALSE(parseInto(R, {"--help"}));
  EXPECT_TRUE(R.helpRequested());
}

TEST(OptionRegistryTest, PositionalCollected) {
  OptionRegistry R = sampleRegistry();
  EXPECT_TRUE(parseInto(R, {"a.trace", "--trials=2", "b.trace"}));
  ASSERT_EQ(R.positional().size(), 2u);
  EXPECT_EQ(R.positional()[0], "a.trace");
  EXPECT_EQ(R.positional()[1], "b.trace");
}

TEST(OptionRegistryTest, LastOccurrenceWins) {
  OptionRegistry R = sampleRegistry();
  EXPECT_TRUE(parseInto(R, {"--trials=1", "--trials=2"}));
  EXPECT_EQ(R.getInt("trials"), 2);
}
