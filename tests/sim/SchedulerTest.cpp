//===- tests/sim/SchedulerTest.cpp ----------------------------------------==//

#include "sim/Scheduler.h"

#include "detectors/GenericDetector.h"

#include "sim/ScriptBuilder.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace pacer;
using namespace pacer::test;

namespace {

std::vector<ThreadScript> twoThreadScripts() {
  ThreadScript Main;
  Main.Tid = 0;
  Main.Ops = {{ActionKind::Fork, 0, 1, InvalidId},
              {ActionKind::Write, 0, 10, 1},
              {ActionKind::Join, 0, 1, InvalidId},
              {ActionKind::ThreadExit, 0, InvalidId, InvalidId}};
  ThreadScript Worker;
  Worker.Tid = 1;
  Worker.Ops = {{ActionKind::Acquire, 1, 0, InvalidId},
                {ActionKind::Write, 1, 11, 2},
                {ActionKind::Release, 1, 0, InvalidId},
                {ActionKind::ThreadExit, 1, InvalidId, InvalidId}};
  return {Main, Worker};
}

TEST(SchedulerTest, ProducesAllActions) {
  Scheduler Sched(twoThreadScripts(), Rng(1));
  Trace T = Sched.run();
  EXPECT_EQ(T.size(), 8u);
  EXPECT_EQ(validateTrace(T, 2), "");
}

TEST(SchedulerTest, ChildRunsOnlyAfterFork) {
  Scheduler Sched(twoThreadScripts(), Rng(2));
  Trace T = Sched.run();
  size_t ForkIndex = 0, FirstChild = T.size();
  for (size_t I = 0; I != T.size(); ++I) {
    if (T[I].Kind == ActionKind::Fork)
      ForkIndex = I;
    if (T[I].Tid == 1 && I < FirstChild)
      FirstChild = I;
  }
  EXPECT_LT(ForkIndex, FirstChild);
}

TEST(SchedulerTest, JoinWaitsForChildExit) {
  Scheduler Sched(twoThreadScripts(), Rng(3));
  Trace T = Sched.run();
  size_t JoinIndex = 0, ExitIndex = 0;
  for (size_t I = 0; I != T.size(); ++I) {
    if (T[I].Kind == ActionKind::Join)
      JoinIndex = I;
    if (T[I].Kind == ActionKind::ThreadExit && T[I].Tid == 1)
      ExitIndex = I;
  }
  EXPECT_LT(ExitIndex, JoinIndex);
}

TEST(SchedulerTest, MutualExclusionRespected) {
  // Two workers contend on one lock; the interleaving must never show
  // overlapping critical sections (validateTrace checks ownership).
  ThreadScript Main;
  Main.Tid = 0;
  Main.Ops = {{ActionKind::Fork, 0, 1, InvalidId},
              {ActionKind::Fork, 0, 2, InvalidId},
              {ActionKind::Join, 0, 1, InvalidId},
              {ActionKind::Join, 0, 2, InvalidId},
              {ActionKind::ThreadExit, 0, InvalidId, InvalidId}};
  auto Worker = [](ThreadId Tid) {
    ThreadScript Script;
    Script.Tid = Tid;
    for (int I = 0; I < 50; ++I) {
      Script.Ops.push_back({ActionKind::Acquire, Tid, 0, InvalidId});
      Script.Ops.push_back({ActionKind::Write, Tid, 5, 1});
      Script.Ops.push_back({ActionKind::Release, Tid, 0, InvalidId});
    }
    Script.Ops.push_back({ActionKind::ThreadExit, Tid, InvalidId, InvalidId});
    return Script;
  };
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    Scheduler Sched({Main, Worker(1), Worker(2)}, Rng(Seed));
    Trace T = Sched.run();
    EXPECT_EQ(validateTrace(T, 3), "") << "seed " << Seed;
  }
}

TEST(SchedulerTest, DeterministicGivenSeed) {
  Scheduler A(twoThreadScripts(), Rng(7));
  Scheduler B(twoThreadScripts(), Rng(7));
  Trace TA = A.run();
  Trace TB = B.run();
  ASSERT_EQ(TA.size(), TB.size());
  for (size_t I = 0; I != TA.size(); ++I) {
    EXPECT_EQ(TA[I].Kind, TB[I].Kind);
    EXPECT_EQ(TA[I].Tid, TB[I].Tid);
    EXPECT_EQ(TA[I].Target, TB[I].Target);
  }
}

TEST(SchedulerTest, DifferentSeedsDifferentInterleavings) {
  // With contention, two seeds should (virtually always) differ.
  auto RunWith = [](uint64_t Seed) {
    WorkloadSpec Spec = tinyTestWorkload();
    CompiledWorkload Workload(Spec);
    // Same scripts, different scheduler randomness.
    ScriptBuilder Builder(Workload, Rng(42));
    Scheduler Sched(Builder.build(), Rng(Seed), Spec.MaxSchedulerBurst);
    return Sched.run();
  };
  Trace A = RunWith(1);
  Trace B = RunWith(2);
  ASSERT_EQ(A.size(), B.size()) << "same scripts, same total ops";
  bool Different = false;
  for (size_t I = 0; I != A.size() && !Different; ++I)
    Different = A[I].Tid != B[I].Tid;
  EXPECT_TRUE(Different);
}

TEST(SchedulerTest, GeneratedWorkloadTracesAreLegal) {
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    CompiledWorkload Workload(tinyTestWorkload());
    Trace T = generateTrace(Workload, Seed);
    EXPECT_EQ(validateTrace(T, Workload.totalThreads()), "")
        << "seed " << Seed;
  }
}

TEST(SchedulerTest, WaveStructureBoundsLiveThreads) {
  WorkloadSpec Spec = mediumTestWorkload(); // 12 workers, 6 per wave.
  CompiledWorkload Workload(Spec);
  Trace T = generateTrace(Workload, 3);
  EXPECT_LE(maxLiveThreads(T, Workload.totalThreads()),
            Spec.MaxLiveWorkers + 1u);
}


TEST(SchedulerTest, RoundRobinPolicyProducesLegalTraces) {
  WorkloadSpec Spec = tinyTestWorkload();
  CompiledWorkload Workload(Spec);
  ScriptBuilder Builder(Workload, Rng(42));
  Scheduler Sched(Builder.build(), Rng(1), Spec.MaxSchedulerBurst,
                  SchedulePolicy::RoundRobin);
  Trace T = Sched.run();
  EXPECT_EQ(validateTrace(T, Workload.totalThreads()), "");
}

TEST(SchedulerTest, RoundRobinIsFairerThanRandom) {
  // Under round robin, same-wave workers' progress stays tightly coupled:
  // measure the largest burst imbalance over a window.
  ThreadScript Main;
  Main.Tid = 0;
  Main.Ops = {{ActionKind::Fork, 0, 1, InvalidId},
              {ActionKind::Fork, 0, 2, InvalidId},
              {ActionKind::Join, 0, 1, InvalidId},
              {ActionKind::Join, 0, 2, InvalidId},
              {ActionKind::ThreadExit, 0, InvalidId, InvalidId}};
  auto Worker = [](ThreadId Tid) {
    ThreadScript Script;
    Script.Tid = Tid;
    for (int I = 0; I < 2000; ++I)
      Script.Ops.push_back({ActionKind::Read, Tid, 5, 1});
    Script.Ops.push_back({ActionKind::ThreadExit, Tid, InvalidId, InvalidId});
    return Script;
  };
  auto MaxSkew = [&](SchedulePolicy Policy) {
    Scheduler Sched({Main, Worker(1), Worker(2)}, Rng(5), 4, Policy);
    Trace T = Sched.run();
    int64_t P1 = 0, P2 = 0, Max = 0;
    for (const Action &A : T) {
      if (A.Tid == 1)
        ++P1;
      if (A.Tid == 2)
        ++P2;
      Max = std::max(Max, std::abs(P1 - P2));
    }
    return Max;
  };
  EXPECT_LT(MaxSkew(SchedulePolicy::RoundRobin),
            MaxSkew(SchedulePolicy::RandomUniform));
}

TEST(SchedulerTest, DetectorsAgreeAcrossPolicies) {
  // Precision is schedule independent: whatever interleaving either
  // policy produces, every reported race is a planted pair.
  WorkloadSpec Spec = tinyTestWorkload();
  CompiledWorkload Workload(Spec);
  for (SchedulePolicy Policy :
       {SchedulePolicy::RandomUniform, SchedulePolicy::RoundRobin}) {
    ScriptBuilder Builder(Workload, Rng(9));
    Scheduler Sched(Builder.build(), Rng(2), Spec.MaxSchedulerBurst, Policy);
    Trace T = Sched.run();
    CollectingSink Sink;
    GenericDetector D(Sink);
    replayInto(D, T);
    std::set<RaceKey> Planted;
    for (uint32_t Race = 0; Race < Workload.numRaces(); ++Race)
      Planted.insert(Workload.racyKey(Race));
    for (RaceKey Key : Sink.keys())
      EXPECT_TRUE(Planted.count(Key));
  }
}

static uint64_t hashTrace(const Trace &T) {
  uint64_t Hash = 1469598103934665603ull;
  auto Mix = [&Hash](uint64_t Value) {
    Hash = (Hash ^ Value) * 1099511628211ull;
  };
  for (const Action &A : T) {
    Mix(static_cast<uint64_t>(A.Kind));
    Mix(A.Tid);
    Mix(A.Target);
    Mix(A.Site);
  }
  return Hash;
}

TEST(SchedulerTest, GoldenTraceHashesPinned) {
  // Reproducibility guard: experiments replay bit-identically from seeds.
  // If a generator/scheduler change is intentional, update these values
  // (and expect all measured numbers in EXPERIMENTS.md to shift).
  CompiledWorkload Tiny(tinyTestWorkload());
  Trace T1 = generateTrace(Tiny, 1);
  EXPECT_EQ(T1.size(), 6227u);
  EXPECT_EQ(hashTrace(T1), 0x26cde6e8d31f22a8ull);
  CompiledWorkload Medium(mediumTestWorkload());
  Trace T7 = generateTrace(Medium, 7);
  EXPECT_EQ(T7.size(), 61059u);
  EXPECT_EQ(hashTrace(T7), 0xe5aaed45166516d6ull);
}

} // namespace
