//===- tests/sim/TraceCorruptionTest.cpp ----------------------------------==//
//
// Corrupt-input corpus for the binary v2 format, applied uniformly to all
// three read paths: readTraceFile (buffered load), TraceView (mmap and its
// forced-buffered fallback), and StreamingTraceReader (bounded window).
// The daemon feeds attacker-controlled bytes straight into these readers,
// so every corruption must produce a clean diagnostic -- never a crash,
// an abort (e.g. a reserve() sized from a hostile record count), or a
// silently truncated parse.
//
//===----------------------------------------------------------------------===//

#include "sim/StreamingTraceReader.h"
#include "sim/TraceIO.h"
#include "sim/TraceView.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace pacer;
using pacer::test::TraceBuilder;

namespace {

std::string writeCorpusFile(const std::string &Name,
                            const std::string &Bytes) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  return Path;
}

/// A small legal trace to corrupt.
Trace baseTrace() {
  return TraceBuilder()
      .fork(0, 1)
      .acq(1, 3)
      .write(1, 5, 42)
      .rel(1, 3)
      .read(0, 5, 43)
      .exit(1)
      .join(0, 1)
      .exit(0)
      .take();
}

/// Byte image of a well-formed v2 file for \p T.
std::string binaryImage(const Trace &T) {
  std::string Bytes(BinaryTraceHeaderBytes, '\0');
  packBinaryHeader(T.size(), reinterpret_cast<unsigned char *>(&Bytes[0]));
  for (const Action &A : T) {
    unsigned char Rec[BinaryTraceRecordBytes];
    packBinaryRecord(A, Rec);
    Bytes.append(reinterpret_cast<char *>(Rec), sizeof(Rec));
  }
  return Bytes;
}

/// Overwrites the header's u64 record count in place.
void patchCount(std::string &Bytes, uint64_t Count) {
  ASSERT_GE(Bytes.size(), BinaryTraceHeaderBytes);
  for (int I = 0; I < 8; ++I)
    Bytes[16 + I] = static_cast<char>((Count >> (8 * I)) & 0xFF);
}

struct CorpusEntry {
  const char *Name;
  std::string Bytes;
};

/// Every corruption the readers must reject. Built fresh per test (gtest
/// has no cheap fixture-scoped lazy init under -fno-exceptions).
std::vector<CorpusEntry> corruptCorpus() {
  const Trace T = baseTrace();
  const std::string Good = binaryImage(T);
  std::vector<CorpusEntry> Corpus;

  CorpusEntry BadMagic{"bad_magic", Good};
  BadMagic.Bytes[3] = 'X';
  Corpus.push_back(BadMagic);

  // First byte still 0xB7 so the file classifies as binary, rest wrong.
  CorpusEntry TornMagic{"torn_magic", Good};
  TornMagic.Bytes[7] = '9';
  Corpus.push_back(TornMagic);

  CorpusEntry BadVersion{"bad_version", Good};
  BadVersion.Bytes[8] = 0x7F;
  Corpus.push_back(BadVersion);

  Corpus.push_back({"short_header", Good.substr(0, 10)});
  Corpus.push_back({"header_only_count_nonzero",
                    Good.substr(0, BinaryTraceHeaderBytes)});
  Corpus.push_back({"truncated_mid_record",
                    Good.substr(0, Good.size() - 5)});
  Corpus.push_back({"trailing_bytes", Good + "tail"});

  // Count larger than the records present: a lying header must not make
  // the reader allocate for (or wait on) records that never arrive.
  CorpusEntry CountOverrun{"count_overrun", Good};
  patchCount(CountOverrun.Bytes, T.size() + 1000);
  Corpus.push_back(CountOverrun);

  // Count whose byte size overflows u64 (count * 12 wraps): the readers'
  // overflow guards must reject it before any size arithmetic is trusted.
  CorpusEntry CountOverflow{"count_overflow", Good};
  patchCount(CountOverflow.Bytes, UINT64_MAX / 2);
  Corpus.push_back(CountOverflow);

  CorpusEntry BadKind{"bad_kind_byte", Good};
  BadKind.Bytes[BinaryTraceHeaderBytes] = static_cast<char>(0xEE);
  Corpus.push_back(BadKind);

  // Fork/Join Target is a thread id and must fit the 24-bit tid space;
  // 0xFFFFFFFE would grow per-thread detector state without bound.
  {
    Trace Bad = T;
    Bad[0].Target = 0xFFFFFFFEu; // The fork.
    Corpus.push_back({"fork_tid_out_of_range", binaryImage(Bad)});
  }
  {
    Trace Bad = T;
    Bad[6].Target = 0xFFFFFFFEu; // The join.
    Corpus.push_back({"join_tid_out_of_range", binaryImage(Bad)});
  }

  return Corpus;
}

/// Drains \p Reader to completion; true if it ever failed.
bool streamRejects(StreamingTraceReader &Reader) {
  if (!Reader.ok())
    return true;
  while (!Reader.done()) {
    Reader.next();
    if (!Reader.ok())
      return true;
  }
  return !Reader.ok();
}

TEST(TraceCorruptionTest, EveryReaderRejectsEveryCorruption) {
  for (const CorpusEntry &Entry : corruptCorpus()) {
    std::string Path =
        writeCorpusFile(std::string("pacer_corrupt_") + Entry.Name, Entry.Bytes);

    TraceParseResult Buffered = readTraceFile(Path);
    EXPECT_FALSE(Buffered.Ok) << Entry.Name << ": readTraceFile accepted";
    EXPECT_FALSE(Buffered.Error.empty()) << Entry.Name;

    TraceView Mapped = TraceView::open(Path);
    EXPECT_FALSE(Mapped.ok()) << Entry.Name << ": mmap view accepted";
    EXPECT_FALSE(Mapped.error().empty()) << Entry.Name;

    TraceView Fallback = TraceView::open(Path, /*ForceBuffered=*/true);
    EXPECT_FALSE(Fallback.ok()) << Entry.Name << ": buffered view accepted";

    // Tiny window so record validation happens across window refills.
    StreamingTraceReader Stream(Path, /*WindowActions=*/2);
    EXPECT_TRUE(streamRejects(Stream))
        << Entry.Name << ": streaming reader accepted";
    EXPECT_FALSE(Stream.error().empty()) << Entry.Name;

    std::remove(Path.c_str());
  }
}

TEST(TraceCorruptionTest, CorpusBaseImageIsAccepted) {
  // The corpus is only meaningful if the uncorrupted image passes
  // everywhere; guard against the generator itself drifting.
  const Trace T = baseTrace();
  std::string Path =
      writeCorpusFile("pacer_corrupt_base_ok", binaryImage(T));

  TraceParseResult Buffered = readTraceFile(Path);
  ASSERT_TRUE(Buffered.Ok) << Buffered.Error;
  EXPECT_EQ(Buffered.T.size(), T.size());

  TraceView View = TraceView::open(Path);
  ASSERT_TRUE(View.ok()) << View.error();
  EXPECT_EQ(View.actions().size(), T.size());

  StreamingTraceReader Stream(Path, 2);
  size_t Streamed = 0;
  while (!Stream.done()) {
    TraceSpan Chunk = Stream.next();
    ASSERT_TRUE(Stream.ok()) << Stream.error();
    Streamed += Chunk.size();
  }
  EXPECT_EQ(Streamed, T.size());
  std::remove(Path.c_str());
}

TEST(TraceCorruptionTest, EmptyAndGarbageFilesRejectCleanly) {
  // Not valid in either format: empty file, pure garbage (classifies as
  // text), and a text header followed by garbage.
  const struct {
    const char *Name;
    const char *Bytes;
  } Cases[] = {
      {"empty", ""},
      {"garbage_text", "not a trace at all\n"},
      {"text_bad_body", "pacer-trace v1 2\nrd 0 1 2\nbogus line here\n"},
  };
  for (const auto &Case : Cases) {
    std::string Path = writeCorpusFile(
        std::string("pacer_corrupt_") + Case.Name, Case.Bytes);
    TraceParseResult Result = readTraceFile(Path);
    EXPECT_FALSE(Result.Ok) << Case.Name;
    EXPECT_FALSE(Result.Error.empty()) << Case.Name;

    StreamingTraceReader Stream(Path, 4);
    EXPECT_TRUE(streamRejects(Stream)) << Case.Name;
    std::remove(Path.c_str());
  }
}

} // namespace
