//===- tests/sim/WorkloadTest.cpp -----------------------------------------==//

#include "sim/Workloads.h"

#include "sim/TraceGenerator.h"

#include <gtest/gtest.h>

using namespace pacer;

namespace {

TEST(CompiledWorkloadTest, VariableLayoutIsDisjoint) {
  WorkloadSpec Spec = tinyTestWorkload();
  CompiledWorkload W(Spec);
  // Racy vars first, then read-shared, shared, and locals.
  EXPECT_EQ(W.racyVar(0), 0u);
  EXPECT_EQ(W.readSharedVar(0), W.numRaces());
  EXPECT_EQ(W.sharedVar(0), W.numRaces() + Spec.ReadSharedVars);
  EXPECT_EQ(W.localVar(0, 0),
            W.numRaces() + Spec.ReadSharedVars + Spec.SharedVars);
  VarId LastLocal =
      W.localVar(Spec.WorkerThreads, Spec.LocalVarsPerThread - 1);
  EXPECT_EQ(LastLocal + 1, W.numVars());
}

TEST(CompiledWorkloadTest, RacySitesUniqueAndBeyondMethodSites) {
  CompiledWorkload W(tinyTestWorkload());
  std::set<SiteId> Sites;
  uint32_t MethodSites = W.numMethods() * tinyTestWorkload().SitesPerMethod;
  for (uint32_t Race = 0; Race < W.numRaces(); ++Race) {
    EXPECT_GE(W.racySiteA(Race), MethodSites);
    EXPECT_GE(W.racySiteB(Race), MethodSites);
    Sites.insert(W.racySiteA(Race));
    Sites.insert(W.racySiteB(Race));
  }
  EXPECT_EQ(Sites.size(), 2u * W.numRaces()) << "sites are dedicated";
  EXPECT_EQ(W.numSites(), MethodSites + 2 * W.numRaces());
}

TEST(CompiledWorkloadTest, RacyKeyIsNormalized) {
  CompiledWorkload W(tinyTestWorkload());
  for (uint32_t Race = 0; Race < W.numRaces(); ++Race) {
    RaceKey Key = W.racyKey(Race);
    EXPECT_LE(Key.FirstSite, Key.SecondSite);
  }
}

TEST(CompiledWorkloadTest, HotRacesLiveInHotMethods) {
  WorkloadSpec Spec = tinyTestWorkload();
  CompiledWorkload W(Spec);
  for (uint32_t Race = 0; Race < W.numRaces(); ++Race) {
    uint32_t Method = W.siteToMethod()[W.racySiteA(Race)];
    EXPECT_EQ(W.isHotMethod(Method), Spec.Races[Race].Hot)
        << "race " << Race;
  }
}

TEST(CompiledWorkloadTest, WaveWorkersPartitionWorkers) {
  WorkloadSpec Spec = mediumTestWorkload(); // 12 workers, waves of 6.
  CompiledWorkload W(Spec);
  EXPECT_EQ(W.numWaves(), 2u);
  std::set<ThreadId> All;
  for (uint32_t Wave = 0; Wave < W.numWaves(); ++Wave)
    for (ThreadId Tid : W.waveWorkers(Wave)) {
      EXPECT_EQ(W.waveOf(Tid), Wave);
      EXPECT_TRUE(All.insert(Tid).second) << "duplicate worker";
    }
  EXPECT_EQ(All.size(), Spec.WorkerThreads);
}

TEST(CompiledWorkloadTest, ForkJoinLocalBanksRecycleAcrossWindows) {
  // The fork/join family models task runtimes reusing stacks: a task's
  // locals share the bank of the same window position one window earlier.
  // Main keeps a dedicated bank; wave families keep per-thread banks.
  CompiledWorkload W(forkJoinModelWithTasks(60));
  const uint32_t Window = W.waveSize();
  EXPECT_EQ(W.localBankOf(0), 0u);
  EXPECT_EQ(W.localBankOf(1), 1u);
  EXPECT_EQ(W.localBankOf(1 + Window), 1u)
      << "window N+1 reuses window N's banks";
  EXPECT_EQ(W.numLocalBanks(), Window + 1);
  EXPECT_EQ(W.localVar(1, 0), W.localVar(1 + Window, 0));
  // So the variable space depends on the live cap, not on total spawns.
  EXPECT_EQ(CompiledWorkload(forkJoinModelWithTasks(600)).numVars(),
            W.numVars());
  // Wave families are untouched: every thread keeps its own bank.
  CompiledWorkload Wave(mediumTestWorkload());
  EXPECT_EQ(Wave.localBankOf(1 + Wave.waveSize()), 1 + Wave.waveSize());
}

TEST(CompiledWorkloadTest, SiteToMethodCoversAllSites) {
  CompiledWorkload W(tinyTestWorkload());
  EXPECT_EQ(W.siteToMethod().size(), W.numSites());
  for (uint32_t Method : W.siteToMethod())
    EXPECT_LT(Method, W.numMethods());
}

TEST(PaperWorkloadsTest, ThreadCountsMatchTable2) {
  // Table 2: total threads 16 / 403 / 9 / 37; max live 8 / 102 / 9 / 9.
  EXPECT_EQ(CompiledWorkload(eclipseModel()).totalThreads(), 16u);
  EXPECT_EQ(CompiledWorkload(hsqldbModel()).totalThreads(), 403u);
  EXPECT_EQ(CompiledWorkload(xalanModel()).totalThreads(), 9u);
  EXPECT_EQ(CompiledWorkload(pseudojbbModel()).totalThreads(), 37u);
  EXPECT_EQ(eclipseModel().MaxLiveWorkers + 1, 8u);
  EXPECT_EQ(hsqldbModel().MaxLiveWorkers + 1, 102u);
  EXPECT_EQ(xalanModel().MaxLiveWorkers + 1, 9u);
  EXPECT_EQ(pseudojbbModel().MaxLiveWorkers + 1, 9u);
}

TEST(PaperWorkloadsTest, AllFourPresentAndNamed) {
  std::vector<WorkloadSpec> All = paperWorkloads();
  ASSERT_EQ(All.size(), 4u);
  EXPECT_EQ(All[0].Name, "eclipse");
  EXPECT_EQ(All[1].Name, "hsqldb");
  EXPECT_EQ(All[2].Name, "xalan");
  EXPECT_EQ(All[3].Name, "pseudojbb");
  EXPECT_EQ(paperWorkloadByName("xalan").WorkerThreads,
            xalanModel().WorkerThreads);
}

TEST(PaperWorkloadsTest, SyncFractionNearSpecified) {
  // The paper notes synchronization is ~3% of analysed operations; the
  // models combine standalone sync with critical sections to land in
  // that regime.
  WorkloadSpec Spec = scaleWorkload(xalanModel(), 0.2);
  CompiledWorkload W(Spec);
  TraceProfile Profile = profileTrace(generateTrace(W, 1));
  EXPECT_GT(Profile.syncFraction(), 0.01);
  EXPECT_LT(Profile.syncFraction(), 0.08);
  EXPECT_GT(Profile.Reads, Profile.Writes);
}

TEST(PaperWorkloadsTest, RaceCountsInTable2Regime) {
  EXPECT_EQ(eclipseModel().Races.size(), 80u);
  EXPECT_EQ(hsqldbModel().Races.size(), 28u);
  EXPECT_EQ(xalanModel().Races.size(), 75u);
  EXPECT_EQ(pseudojbbModel().Races.size(), 14u);
}

TEST(ScaleWorkloadTest, ScalesOpsPerWorker) {
  WorkloadSpec Spec = tinyTestWorkload();
  uint64_t Base = Spec.OpsPerWorker;
  EXPECT_EQ(scaleWorkload(Spec, 2.0).OpsPerWorker, Base * 2);
  EXPECT_EQ(scaleWorkload(Spec, 0.5).OpsPerWorker, Base / 2);
  EXPECT_GE(scaleWorkload(Spec, 0.01).OpsPerWorker, 100u);
}

TEST(TraceProfileTest, CountsByKind) {
  Trace T;
  T.push_back({ActionKind::Read, 0, 1, 1});
  T.push_back({ActionKind::Write, 0, 1, 1});
  T.push_back({ActionKind::Acquire, 0, 1, InvalidId});
  T.push_back({ActionKind::VolatileWrite, 0, 1, InvalidId});
  T.push_back({ActionKind::Fork, 0, 1, InvalidId});
  T.push_back({ActionKind::ThreadExit, 0, InvalidId, InvalidId});
  TraceProfile Profile = profileTrace(T);
  EXPECT_EQ(Profile.Total, 6u);
  EXPECT_EQ(Profile.Reads, 1u);
  EXPECT_EQ(Profile.Writes, 1u);
  EXPECT_EQ(Profile.SyncOps, 3u);
  EXPECT_EQ(Profile.Volatiles, 1u);
  EXPECT_EQ(Profile.Forks, 1u);
}

} // namespace
