//===- tests/sim/TraceIOTest.cpp ------------------------------------------==//

#include "sim/TraceIO.h"

#include "harness/TrialRunner.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace pacer;
using namespace pacer::test;

namespace {

bool sameTrace(const Trace &A, const Trace &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    if (A[I].Kind != B[I].Kind || A[I].Tid != B[I].Tid ||
        A[I].Target != B[I].Target || A[I].Site != B[I].Site)
      return false;
  }
  return true;
}

TEST(TraceIOTest, RoundTripsHandTrace) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(1, 7)
                .write(1, 3, 42)
                .rel(1, 7)
                .volWrite(1, 2)
                .volRead(0, 2)
                .join(0, 1)
                .take();
  T.push_back({ActionKind::AwaitVolatile, 0, 2, 1});
  T.push_back({ActionKind::ThreadExit, 0, InvalidId, InvalidId});
  TraceParseResult Result = parseTrace(serializeTrace(T));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(sameTrace(T, Result.T));
}

TEST(TraceIOTest, RoundTripsGeneratedWorkload) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 5);
  TraceParseResult Result = parseTrace(serializeTrace(T));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(sameTrace(T, Result.T));
}

TEST(TraceIOTest, EmptyTraceRoundTrips) {
  TraceParseResult Result = parseTrace(serializeTrace(Trace{}));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.T.empty());
}

TEST(TraceIOTest, InvalidIdRendersAsDash) {
  Trace T;
  T.push_back({ActionKind::ThreadExit, 3, InvalidId, InvalidId});
  std::string Text = serializeTrace(T);
  EXPECT_NE(Text.find("exit 3 - -"), std::string::npos) << Text;
}

TEST(TraceIOTest, RejectsBadMagic) {
  TraceParseResult Result = parseTrace("not-a-trace v1 0\n");
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("magic"), std::string::npos);
}

TEST(TraceIOTest, RejectsBadVersion) {
  TraceParseResult Result = parseTrace("pacer-trace v9 0\n");
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("version"), std::string::npos);
}

TEST(TraceIOTest, RejectsMalformedLines) {
  const char *Header = "pacer-trace v1 1\n";
  EXPECT_FALSE(parseTrace(std::string(Header) + "rd 0\n").Ok);
  EXPECT_FALSE(parseTrace(std::string(Header) + "zap 0 1 2\n").Ok);
  EXPECT_FALSE(parseTrace(std::string(Header) + "rd x 1 2\n").Ok);
  EXPECT_FALSE(parseTrace(std::string(Header) + "rd 0 1 2 3\n").Ok);
  EXPECT_FALSE(parseTrace(std::string(Header) + "rd 0 99999999999 2\n").Ok);
}

TEST(TraceIOTest, ErrorNamesLine) {
  TraceParseResult Result =
      parseTrace("pacer-trace v1 2\nrd 0 1 2\nbad line here extra\n");
  ASSERT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("line 3"), std::string::npos) << Result.Error;
}

TEST(TraceIOTest, SkipsBlankLines) {
  TraceParseResult Result =
      parseTrace("pacer-trace v1 1\n\nrd 0 1 2\n\n");
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.T.size(), 1u);
}

TEST(TraceIOTest, FileRoundTrip) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 9);
  std::string Path = ::testing::TempDir() + "/pacer_trace_io_test.trace";
  ASSERT_TRUE(writeTraceFile(Path, T));
  TraceParseResult Result = readTraceFile(Path);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(sameTrace(T, Result.T));
  std::remove(Path.c_str());
}

TEST(TraceIOTest, MissingFileReportsError) {
  TraceParseResult Result = readTraceFile("/nonexistent/path/x.trace");
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("cannot open"), std::string::npos);
}

TEST(TraceIOTest, ReplayOfParsedTraceFindsSameRaces) {
  // End to end: record, parse, re-analyse offline; identical reports.
  CompiledWorkload Workload(tinyTestWorkload());
  Trace Original = generateTrace(Workload, 11);
  TraceParseResult Parsed = parseTrace(serializeTrace(Original));
  ASSERT_TRUE(Parsed.Ok);

  TrialResult Live = runTrialOnTrace(Original, Workload, fastTrackSetup(), 1);
  TrialResult Offline =
      runTrialOnTrace(Parsed.T, Workload, fastTrackSetup(), 1);
  EXPECT_EQ(Live.Races, Offline.Races);
}

} // namespace
