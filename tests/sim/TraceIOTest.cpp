//===- tests/sim/TraceIOTest.cpp ------------------------------------------==//

#include "sim/TraceIO.h"

#include "harness/TrialRunner.h"
#include "sim/StreamingTraceReader.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceView.h"
#include "sim/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace pacer;
using namespace pacer::test;

namespace {

bool sameTrace(const Trace &A, const Trace &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    if (A[I].Kind != B[I].Kind || A[I].Tid != B[I].Tid ||
        A[I].Target != B[I].Target || A[I].Site != B[I].Site)
      return false;
  }
  return true;
}

TEST(TraceIOTest, RoundTripsHandTrace) {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(1, 7)
                .write(1, 3, 42)
                .rel(1, 7)
                .volWrite(1, 2)
                .volRead(0, 2)
                .join(0, 1)
                .take();
  T.push_back({ActionKind::AwaitVolatile, 0, 2, 1});
  T.push_back({ActionKind::ThreadExit, 0, InvalidId, InvalidId});
  TraceParseResult Result = parseTrace(serializeTrace(T));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(sameTrace(T, Result.T));
}

TEST(TraceIOTest, RoundTripsGeneratedWorkload) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 5);
  TraceParseResult Result = parseTrace(serializeTrace(T));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(sameTrace(T, Result.T));
}

TEST(TraceIOTest, EmptyTraceRoundTrips) {
  TraceParseResult Result = parseTrace(serializeTrace(Trace{}));
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.T.empty());
}

TEST(TraceIOTest, InvalidIdRendersAsDash) {
  Trace T;
  T.push_back({ActionKind::ThreadExit, 3, InvalidId, InvalidId});
  std::string Text = serializeTrace(T);
  EXPECT_NE(Text.find("exit 3 - -"), std::string::npos) << Text;
}

TEST(TraceIOTest, RejectsBadMagic) {
  TraceParseResult Result = parseTrace("not-a-trace v1 0\n");
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("magic"), std::string::npos);
}

TEST(TraceIOTest, RejectsBadVersion) {
  TraceParseResult Result = parseTrace("pacer-trace v9 0\n");
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("version"), std::string::npos);
}

TEST(TraceIOTest, RejectsMalformedLines) {
  const char *Header = "pacer-trace v1 1\n";
  EXPECT_FALSE(parseTrace(std::string(Header) + "rd 0\n").Ok);
  EXPECT_FALSE(parseTrace(std::string(Header) + "zap 0 1 2\n").Ok);
  EXPECT_FALSE(parseTrace(std::string(Header) + "rd x 1 2\n").Ok);
  EXPECT_FALSE(parseTrace(std::string(Header) + "rd 0 1 2 3\n").Ok);
  EXPECT_FALSE(parseTrace(std::string(Header) + "rd 0 99999999999 2\n").Ok);
}

TEST(TraceIOTest, ErrorNamesLine) {
  TraceParseResult Result =
      parseTrace("pacer-trace v1 2\nrd 0 1 2\nbad line here extra\n");
  ASSERT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("line 3"), std::string::npos) << Result.Error;
}

TEST(TraceIOTest, SkipsBlankLines) {
  TraceParseResult Result =
      parseTrace("pacer-trace v1 1\n\nrd 0 1 2\n\n");
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.T.size(), 1u);
}

TEST(TraceIOTest, FileRoundTrip) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 9);
  std::string Path = ::testing::TempDir() + "/pacer_trace_io_test.trace";
  ASSERT_TRUE(writeTraceFile(Path, T));
  TraceParseResult Result = readTraceFile(Path);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(sameTrace(T, Result.T));
  std::remove(Path.c_str());
}

TEST(TraceIOTest, MissingFileReportsError) {
  TraceParseResult Result = readTraceFile("/nonexistent/path/x.trace");
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("cannot open"), std::string::npos);
}

// --- Binary format (v2) --------------------------------------------------

/// Writes raw bytes to a temp file and returns its path.
std::string writeBytes(const std::string &Name, const std::string &Bytes) {
  std::string Path = ::testing::TempDir() + "/" + Name;
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  return Path;
}

/// A hand trace exercising the encoding's edge values: InvalidId targets
/// and sites, the AwaitVolatile kind (spin-loop threshold reads carry a
/// Site), the maximal 24-bit thread id, and extreme target/site values.
Trace edgeCaseTrace() {
  Trace T = TraceBuilder()
                .fork(0, 1)
                .acq(1, 7)
                .write(1, 3, 42)
                .rel(1, 7)
                .volWrite(1, 2)
                .volRead(0, 2)
                .join(0, 1)
                .take();
  T.push_back({ActionKind::AwaitVolatile, 0, 2, 1});
  T.push_back({ActionKind::Read, MaxActionTid, 0xFFFFFFFEu, 0xFFFFFFFEu});
  T.push_back({ActionKind::ThreadExit, 0, InvalidId, InvalidId});
  return T;
}

TEST(TraceIOBinaryTest, RecordPackUnpackRoundTrips) {
  for (const Action &A : edgeCaseTrace()) {
    unsigned char Rec[BinaryTraceRecordBytes];
    packBinaryRecord(A, Rec);
    Action Back{};
    ASSERT_TRUE(unpackBinaryRecord(Rec, Back));
    EXPECT_EQ(A.Kind, Back.Kind);
    EXPECT_EQ(A.Tid, Back.Tid);
    EXPECT_EQ(A.Target, Back.Target);
    EXPECT_EQ(A.Site, Back.Site);
  }
}

TEST(TraceIOBinaryTest, FileRoundTripsEdgeCases) {
  Trace T = edgeCaseTrace();
  std::string Path = ::testing::TempDir() + "/pacer_bin_edge.btrace";
  ASSERT_TRUE(writeTraceFileBinary(Path, T));
  TraceFormat Format = TraceFormat::Text;
  TraceParseResult Result = readTraceFile(Path, &Format);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Format, TraceFormat::Binary);
  EXPECT_TRUE(sameTrace(T, Result.T));
  std::remove(Path.c_str());
}

TEST(TraceIOBinaryTest, TextBinaryTextIsByteIdentical) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 13);
  std::string TextPath = ::testing::TempDir() + "/pacer_tbt.trace";
  std::string BinPath = ::testing::TempDir() + "/pacer_tbt.btrace";
  ASSERT_TRUE(writeTraceFile(TextPath, T, TraceFormat::Text));

  TraceParseResult FromText = readTraceFile(TextPath);
  ASSERT_TRUE(FromText.Ok) << FromText.Error;
  ASSERT_TRUE(writeTraceFileBinary(BinPath, FromText.T));

  TraceParseResult FromBinary = readTraceFile(BinPath);
  ASSERT_TRUE(FromBinary.Ok) << FromBinary.Error;
  // The text writer is canonical, so a full text -> binary -> text cycle
  // reproduces the original file bytes exactly.
  EXPECT_EQ(serializeTrace(T), serializeTrace(FromBinary.T));
  std::remove(TextPath.c_str());
  std::remove(BinPath.c_str());
}

TEST(TraceIOBinaryTest, EmptyTraceRoundTrips) {
  std::string Path = ::testing::TempDir() + "/pacer_bin_empty.btrace";
  ASSERT_TRUE(writeTraceFileBinary(Path, Trace{}));
  TraceParseResult Result = readTraceFile(Path);
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_TRUE(Result.T.empty());
  std::remove(Path.c_str());
}

std::string validBinaryFile(const Trace &T) {
  std::string Bytes(BinaryTraceHeaderBytes, '\0');
  packBinaryHeader(T.size(), reinterpret_cast<unsigned char *>(&Bytes[0]));
  for (const Action &A : T) {
    unsigned char Rec[BinaryTraceRecordBytes];
    packBinaryRecord(A, Rec);
    Bytes.append(reinterpret_cast<char *>(Rec), sizeof(Rec));
  }
  return Bytes;
}

TEST(TraceIOBinaryTest, RejectsTruncatedHeader) {
  std::string Bytes = validBinaryFile(edgeCaseTrace());
  std::string Path =
      writeBytes("pacer_bin_hdr.btrace", Bytes.substr(0, 10));
  TraceParseResult Result = readTraceFile(Path);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("truncated header"), std::string::npos)
      << Result.Error;
  std::remove(Path.c_str());
}

TEST(TraceIOBinaryTest, RejectsBadMagic) {
  std::string Bytes = validBinaryFile(edgeCaseTrace());
  Bytes[3] = 'X'; // Still starts with 0xB7, so it classifies as binary.
  std::string Path = writeBytes("pacer_bin_magic.btrace", Bytes);
  TraceParseResult Result = readTraceFile(Path);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("magic"), std::string::npos) << Result.Error;
  std::remove(Path.c_str());
}

TEST(TraceIOBinaryTest, RejectsBadVersion) {
  std::string Bytes = validBinaryFile(edgeCaseTrace());
  Bytes[8] = 9;
  std::string Path = writeBytes("pacer_bin_ver.btrace", Bytes);
  TraceParseResult Result = readTraceFile(Path);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("version"), std::string::npos)
      << Result.Error;
  std::remove(Path.c_str());
}

TEST(TraceIOBinaryTest, RejectsTruncatedRecords) {
  std::string Bytes = validBinaryFile(edgeCaseTrace());
  std::string Path =
      writeBytes("pacer_bin_trunc.btrace", Bytes.substr(0, Bytes.size() - 5));
  TraceParseResult Result = readTraceFile(Path);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("truncated trace"), std::string::npos)
      << Result.Error;
  std::remove(Path.c_str());
}

TEST(TraceIOBinaryTest, RejectsTrailingBytes) {
  std::string Bytes = validBinaryFile(edgeCaseTrace());
  Bytes.append(12, '\0');
  std::string Path = writeBytes("pacer_bin_trail.btrace", Bytes);
  TraceParseResult Result = readTraceFile(Path);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("trailing bytes"), std::string::npos)
      << Result.Error;
  std::remove(Path.c_str());
}

TEST(TraceIOBinaryTest, RejectsBadKindByte) {
  std::string Bytes = validBinaryFile(edgeCaseTrace());
  Bytes[BinaryTraceHeaderBytes + BinaryTraceRecordBytes] = '\x7F';
  std::string Path = writeBytes("pacer_bin_kind.btrace", Bytes);
  TraceParseResult Result = readTraceFile(Path);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("bad action kind in record 1"),
            std::string::npos)
      << Result.Error;
  std::remove(Path.c_str());
}

TEST(TraceIOBinaryTest, DetectsFormatByFirstByte) {
  Trace T = edgeCaseTrace();
  std::string TextPath = ::testing::TempDir() + "/pacer_fmt.trace";
  std::string BinPath = ::testing::TempDir() + "/pacer_fmt.btrace";
  ASSERT_TRUE(writeTraceFile(TextPath, T, TraceFormat::Text));
  ASSERT_TRUE(writeTraceFile(BinPath, T, TraceFormat::Binary));
  TraceFormat Format;
  std::string Error;
  ASSERT_TRUE(detectTraceFileFormat(TextPath, Format, Error)) << Error;
  EXPECT_EQ(Format, TraceFormat::Text);
  ASSERT_TRUE(detectTraceFileFormat(BinPath, Format, Error)) << Error;
  EXPECT_EQ(Format, TraceFormat::Binary);
  EXPECT_FALSE(detectTraceFileFormat("/nonexistent/x.trace", Format, Error));
  EXPECT_NE(Error.find("cannot open"), std::string::npos);
  std::remove(TextPath.c_str());
  std::remove(BinPath.c_str());
}

// --- TraceView (mmap zero-copy) ------------------------------------------

TEST(TraceViewTest, MappedViewMatchesTrace) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 21);
  std::string Path = ::testing::TempDir() + "/pacer_view.btrace";
  ASSERT_TRUE(writeTraceFileBinary(Path, T));

  for (bool ForceBuffered : {false, true}) {
    TraceView View = TraceView::open(Path, ForceBuffered);
    ASSERT_TRUE(View.ok()) << View.error();
    TraceSpan S = View.actions();
    ASSERT_EQ(S.size(), T.size());
    for (size_t I = 0; I != T.size(); ++I) {
      EXPECT_EQ(T[I].Kind, S[I].Kind);
      EXPECT_EQ(T[I].Tid, S[I].Tid);
      EXPECT_EQ(T[I].Target, S[I].Target);
      EXPECT_EQ(T[I].Site, S[I].Site);
    }
  }
  std::remove(Path.c_str());
}

TEST(TraceViewTest, RejectsTextTraces) {
  Trace T = edgeCaseTrace();
  std::string Path = ::testing::TempDir() + "/pacer_view.trace";
  ASSERT_TRUE(writeTraceFile(Path, T, TraceFormat::Text));
  TraceView View = TraceView::open(Path);
  EXPECT_FALSE(View.ok());
  EXPECT_NE(View.error().find("not a binary trace"), std::string::npos)
      << View.error();
  std::remove(Path.c_str());
}

TEST(TraceViewTest, RejectsTruncatedFile) {
  std::string Bytes = validBinaryFile(edgeCaseTrace());
  std::string Path = writeBytes("pacer_view_trunc.btrace",
                                Bytes.substr(0, Bytes.size() - 3));
  TraceView View = TraceView::open(Path);
  EXPECT_FALSE(View.ok());
  EXPECT_NE(View.error().find("truncated trace"), std::string::npos)
      << View.error();
  std::remove(Path.c_str());
}

TEST(TraceViewTest, MissingFileReportsError) {
  TraceView View = TraceView::open("/nonexistent/path/x.btrace");
  EXPECT_FALSE(View.ok());
  EXPECT_NE(View.error().find("cannot open"), std::string::npos);
}

// --- StreamingTraceReader ------------------------------------------------

TEST(StreamingTraceReaderTest, ChunksConcatenateToFullTrace) {
  CompiledWorkload Workload(tinyTestWorkload());
  Trace T = generateTrace(Workload, 33);
  std::string TextPath = ::testing::TempDir() + "/pacer_stream.trace";
  std::string BinPath = ::testing::TempDir() + "/pacer_stream.btrace";
  ASSERT_TRUE(writeTraceFile(TextPath, T, TraceFormat::Text));
  ASSERT_TRUE(writeTraceFile(BinPath, T, TraceFormat::Binary));

  for (const std::string &Path : {TextPath, BinPath}) {
    for (size_t Window : {size_t(1), size_t(7), size_t(1 << 20)}) {
      StreamingTraceReader Reader(Path, Window);
      ASSERT_TRUE(Reader.ok()) << Reader.error();
      Trace Rebuilt;
      for (TraceSpan Chunk = Reader.next(); !Chunk.empty();
           Chunk = Reader.next()) {
        EXPECT_LE(Chunk.size(), Window);
        Rebuilt.insert(Rebuilt.end(), Chunk.begin(), Chunk.end());
      }
      ASSERT_TRUE(Reader.ok()) << Reader.error();
      EXPECT_TRUE(Reader.done());
      EXPECT_EQ(Reader.actionsDelivered(), T.size());
      EXPECT_TRUE(sameTrace(T, Rebuilt))
          << Path << " window " << Window;
    }
  }

  StreamingTraceReader BinReader(BinPath);
  EXPECT_EQ(BinReader.format(), TraceFormat::Binary);
  ASSERT_TRUE(BinReader.totalActions().has_value());
  EXPECT_EQ(*BinReader.totalActions(), T.size());
  StreamingTraceReader TextReader(TextPath);
  EXPECT_EQ(TextReader.format(), TraceFormat::Text);
  EXPECT_FALSE(TextReader.totalActions().has_value());

  std::remove(TextPath.c_str());
  std::remove(BinPath.c_str());
}

TEST(StreamingTraceReaderTest, ReportsMidStreamTruncation) {
  std::string Bytes = validBinaryFile(edgeCaseTrace());
  std::string Path = writeBytes("pacer_stream_trunc.btrace",
                                Bytes.substr(0, Bytes.size() - 5));
  StreamingTraceReader Reader(Path, 2);
  ASSERT_TRUE(Reader.ok()) << Reader.error(); // Header is intact.
  while (!Reader.next().empty())
    ;
  EXPECT_FALSE(Reader.ok());
  EXPECT_NE(Reader.error().find("truncated trace"), std::string::npos)
      << Reader.error();
  std::remove(Path.c_str());
}

TEST(StreamingTraceReaderTest, ReportsMalformedTextLine) {
  std::string Path = writeBytes(
      "pacer_stream_bad.trace", "pacer-trace v1 2\nrd 0 1 2\nzap 0 1 2\n");
  StreamingTraceReader Reader(Path, 1);
  ASSERT_TRUE(Reader.ok()) << Reader.error();
  while (!Reader.next().empty())
    ;
  EXPECT_FALSE(Reader.ok());
  EXPECT_NE(Reader.error().find("line 3"), std::string::npos)
      << Reader.error();
  std::remove(Path.c_str());
}

TEST(StreamingTraceReaderTest, MissingFileReportsError) {
  StreamingTraceReader Reader("/nonexistent/path/x.trace");
  EXPECT_FALSE(Reader.ok());
  EXPECT_NE(Reader.error().find("cannot open"), std::string::npos);
  EXPECT_TRUE(Reader.next().empty());
}

TEST(TraceIOTest, ReplayOfParsedTraceFindsSameRaces) {
  // End to end: record, parse, re-analyse offline; identical reports.
  CompiledWorkload Workload(tinyTestWorkload());
  Trace Original = generateTrace(Workload, 11);
  TraceParseResult Parsed = parseTrace(serializeTrace(Original));
  ASSERT_TRUE(Parsed.Ok);

  TrialResult Live = runTrialOnTrace(Original, Workload, fastTrackSetup(), 1);
  TrialResult Offline =
      runTrialOnTrace(Parsed.T, Workload, fastTrackSetup(), 1);
  EXPECT_EQ(Live.Races, Offline.Races);
}

} // namespace
