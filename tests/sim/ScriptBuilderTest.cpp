//===- tests/sim/ScriptBuilderTest.cpp ------------------------------------==//

#include "sim/ScriptBuilder.h"

#include "sim/Workloads.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace pacer;

namespace {

std::vector<ThreadScript> buildTiny(uint64_t Seed,
                                    WorkloadSpec Spec = tinyTestWorkload()) {
  CompiledWorkload Workload(Spec);
  ScriptBuilder Builder(Workload, Rng(Seed));
  return Builder.build();
}

TEST(ScriptBuilderTest, OneScriptPerThread) {
  WorkloadSpec Spec = tinyTestWorkload();
  std::vector<ThreadScript> Scripts = buildTiny(1, Spec);
  ASSERT_EQ(Scripts.size(), Spec.WorkerThreads + 1);
  for (uint32_t Tid = 0; Tid < Scripts.size(); ++Tid) {
    EXPECT_EQ(Scripts[Tid].Tid, Tid);
    ASSERT_FALSE(Scripts[Tid].Ops.empty());
    EXPECT_EQ(Scripts[Tid].Ops.back().Kind, ActionKind::ThreadExit);
  }
}

TEST(ScriptBuilderTest, MainForksAndJoinsEveryWorkerOnce) {
  WorkloadSpec Spec = tinyTestWorkload();
  std::vector<ThreadScript> Scripts = buildTiny(2, Spec);
  std::multiset<ThreadId> Forked, Joined;
  for (const Action &A : Scripts[0].Ops) {
    if (A.Kind == ActionKind::Fork)
      Forked.insert(A.Target);
    if (A.Kind == ActionKind::Join)
      Joined.insert(A.Target);
  }
  EXPECT_EQ(Forked.size(), Spec.WorkerThreads);
  EXPECT_EQ(Joined.size(), Spec.WorkerThreads);
  for (ThreadId Tid = 1; Tid <= Spec.WorkerThreads; ++Tid) {
    EXPECT_EQ(Forked.count(Tid), 1u);
    EXPECT_EQ(Joined.count(Tid), 1u);
  }
}

TEST(ScriptBuilderTest, WorkerLocksBalancedAndAscending) {
  std::vector<ThreadScript> Scripts = buildTiny(3);
  for (size_t Tid = 1; Tid < Scripts.size(); ++Tid) {
    std::vector<LockId> Held;
    for (const Action &A : Scripts[Tid].Ops) {
      if (A.Kind == ActionKind::Acquire) {
        if (!Held.empty())
          EXPECT_GT(A.Target, Held.back()) << "ascending discipline";
        Held.push_back(A.Target);
      } else if (A.Kind == ActionKind::Release) {
        ASSERT_FALSE(Held.empty());
        EXPECT_EQ(A.Target, Held.back()) << "LIFO release";
        Held.pop_back();
      }
    }
    EXPECT_TRUE(Held.empty()) << "script leaves no lock held";
  }
}

TEST(ScriptBuilderTest, SharedAccessesAlwaysUnderGuardLock) {
  WorkloadSpec Spec = tinyTestWorkload();
  CompiledWorkload Workload(Spec);
  ScriptBuilder Builder(Workload, Rng(4));
  std::vector<ThreadScript> Scripts = Builder.build();
  VarId SharedLo = Workload.sharedVar(0);
  VarId SharedHi = Workload.sharedVar(Spec.SharedVars - 1);
  for (const ThreadScript &Script : Scripts) {
    std::set<LockId> Held;
    for (const Action &A : Script.Ops) {
      if (A.Kind == ActionKind::Acquire)
        Held.insert(A.Target);
      else if (A.Kind == ActionKind::Release)
        Held.erase(A.Target);
      else if (isAccessAction(A.Kind) && A.Target >= SharedLo &&
               A.Target <= SharedHi)
        EXPECT_TRUE(Held.count(Workload.guardLock(A.Target)))
            << "lock discipline violated";
    }
  }
}

TEST(ScriptBuilderTest, LocalVarsStayThreadPrivate) {
  WorkloadSpec Spec = tinyTestWorkload();
  CompiledWorkload Workload(Spec);
  ScriptBuilder Builder(Workload, Rng(5));
  std::vector<ThreadScript> Scripts = Builder.build();
  VarId LocalBase = Workload.localVar(0, 0);
  for (const ThreadScript &Script : Scripts) {
    for (const Action &A : Script.Ops) {
      if (!isAccessAction(A.Kind) || A.Target < LocalBase)
        continue;
      uint32_t Owner =
          (A.Target - LocalBase) / Spec.LocalVarsPerThread;
      EXPECT_EQ(Owner, Script.Tid);
    }
  }
}

TEST(ScriptBuilderTest, CertainRacesSpliceBothSites) {
  WorkloadSpec Spec = tinyTestWorkload();
  // Races 0..3 are certain (occurrence 1.0) in the tiny workload.
  CompiledWorkload Workload(Spec);
  ScriptBuilder Builder(Workload, Rng(6));
  std::vector<ThreadScript> Scripts = Builder.build();
  for (uint32_t Race = 0; Race < 4; ++Race) {
    uint32_t SawA = 0, SawB = 0;
    for (const ThreadScript &Script : Scripts)
      for (const Action &A : Script.Ops) {
        if (A.Site == Workload.racySiteA(Race))
          ++SawA;
        if (A.Site == Workload.racySiteB(Race))
          ++SawB;
      }
    EXPECT_EQ(SawA, Spec.Races[Race].PairsPerTrial) << "race " << Race;
    EXPECT_EQ(SawB, Spec.Races[Race].PairsPerTrial);
  }
}

TEST(ScriptBuilderTest, GatedRaceAbsentWhenProbabilityZero) {
  WorkloadSpec Spec = tinyTestWorkload();
  for (PlantedRace &Race : Spec.Races)
    Race.OccurrenceProb = 0.0;
  CompiledWorkload Workload(Spec);
  ScriptBuilder Builder(Workload, Rng(7));
  std::vector<ThreadScript> Scripts = Builder.build();
  for (const ThreadScript &Script : Scripts)
    for (const Action &A : Script.Ops)
      if (isAccessAction(A.Kind))
        EXPECT_GE(A.Target, Workload.numRaces())
            << "no racy variable may be touched";
}

TEST(ScriptBuilderTest, RacyAccessesLandInSameWave) {
  WorkloadSpec Spec = mediumTestWorkload(); // Two waves of six.
  CompiledWorkload Workload(Spec);
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    ScriptBuilder Builder(Workload, Rng(Seed));
    std::vector<ThreadScript> Scripts = Builder.build();
    for (uint32_t Race = 0; Race < Workload.numRaces(); ++Race) {
      std::set<uint32_t> Waves;
      for (const ThreadScript &Script : Scripts)
        for (const Action &A : Script.Ops)
          if (isAccessAction(A.Kind) && A.Target == Workload.racyVar(Race))
            Waves.insert(Workload.waveOf(Script.Tid));
      EXPECT_LE(Waves.size(), 1u)
          << "racy accesses must share a wave (race " << Race << ")";
    }
  }
}

TEST(ScriptBuilderTest, DeterministicGivenSeed) {
  std::vector<ThreadScript> A = buildTiny(9);
  std::vector<ThreadScript> B = buildTiny(9);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    ASSERT_EQ(A[I].Ops.size(), B[I].Ops.size());
    for (size_t J = 0; J != A[I].Ops.size(); ++J)
      EXPECT_EQ(A[I].Ops[J].Target, B[I].Ops[J].Target);
  }
}

TEST(ScriptBuilderTest, SitesWithinCompiledRange) {
  WorkloadSpec Spec = tinyTestWorkload();
  CompiledWorkload Workload(Spec);
  ScriptBuilder Builder(Workload, Rng(11));
  for (const ThreadScript &Script : Builder.build())
    for (const Action &A : Script.Ops)
      if (isAccessAction(A.Kind))
        EXPECT_LT(A.Site, Workload.numSites());
}

} // namespace
