//===- tests/detectors/FastTrackDetectorTest.cpp --------------------------==//

#include "detectors/FastTrackDetector.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

class FastTrackDetectorTest : public ::testing::Test {
protected:
  CollectingSink Sink;
  FastTrackDetector D{Sink};

  void replay(Trace T) { replayInto(D, T); }
};

TEST_F(FastTrackDetectorTest, WriteWriteRaceDetected) {
  replay(TraceBuilder().fork(0, 1).write(0, 5, 50).write(1, 5, 51).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstSite, 50u);
  EXPECT_EQ(Sink.Reports[0].SecondSite, 51u);
  EXPECT_EQ(Sink.Reports[0].FirstKind, AccessKind::Write);
  EXPECT_EQ(Sink.Reports[0].SecondKind, AccessKind::Write);
}

TEST_F(FastTrackDetectorTest, WriteReadRaceDetected) {
  replay(TraceBuilder().fork(0, 1).write(0, 5).read(1, 5).take());
  EXPECT_EQ(Sink.size(), 1u);
}

TEST_F(FastTrackDetectorTest, ReadWriteRaceDetected) {
  replay(TraceBuilder().fork(0, 1).read(0, 5, 50).write(1, 5, 51).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstKind, AccessKind::Read);
  EXPECT_EQ(Sink.Reports[0].FirstSite, 50u);
}

TEST_F(FastTrackDetectorTest, LockOrderingPreventsRace) {
  replay(TraceBuilder()
             .fork(0, 1)
             .acq(0, 9)
             .write(0, 5)
             .rel(0, 9)
             .acq(1, 9)
             .write(1, 5)
             .rel(1, 9)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(FastTrackDetectorTest, ConcurrentReadsThenOrderedWriteIsSafe) {
  // Two concurrent reads inflate the read map; a write ordered after both
  // (via join) is race free and clears the map.
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .read(1, 5)
             .read(2, 5)
             .join(0, 1)
             .join(0, 2)
             .write(0, 5)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(FastTrackDetectorTest, ConcurrentReadsBothReportedAtRacingWrite) {
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .read(1, 5, 51)
             .read(2, 5, 52)
             .write(0, 5, 50)
             .take());
  EXPECT_EQ(Sink.size(), 2u);
  EXPECT_TRUE(Sink.keys().count(RaceKey{50, 51}));
  EXPECT_TRUE(Sink.keys().count(RaceKey{50, 52}));
}

TEST_F(FastTrackDetectorTest, SameEpochReadIsNoop) {
  replay(TraceBuilder().read(0, 5).read(0, 5).read(0, 5).take());
  EXPECT_TRUE(Sink.empty());
  EXPECT_EQ(D.stats().totalReads(), 3u);
}

TEST_F(FastTrackDetectorTest, WriteClearsReadMapSoLaterWriteReportsWrite) {
  // t1 reads (sampling the read into the map), t0 writes concurrently
  // (read-write race reported, map cleared), then t2 writes concurrently
  // with t0's write: only a write-write race is reported, because the read
  // metadata was discarded at the first write.
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .read(1, 5, 51)
             .write(0, 5, 50)
             .write(2, 5, 52)
             .take());
  ASSERT_EQ(Sink.size(), 2u);
  EXPECT_EQ(Sink.Reports[0].FirstKind, AccessKind::Read);
  EXPECT_EQ(Sink.Reports[1].FirstKind, AccessKind::Write);
  EXPECT_EQ(Sink.Reports[1].FirstSite, 50u);
  EXPECT_EQ(Sink.Reports[1].SecondSite, 52u);
}

TEST_F(FastTrackDetectorTest, OriginalVariantKeepsReadEpochAcrossWrite) {
  // With ClearReadMapAtWrite=false, a read epoch ordered before a write by
  // the same thread survives; behaviourally races are the same here, but
  // the modified variant discards it. This exercises the config switch.
  CollectingSink Sink2;
  FastTrackConfig Config;
  Config.ClearReadMapAtWrite = false;
  FastTrackDetector Original(Sink2, Config);
  replayInto(Original, TraceBuilder()
                           .fork(0, 1)
                           .read(0, 5)
                           .write(0, 5)
                           .write(1, 5)
                           .take());
  // t1's write races with t0's write; with the original variant the stale
  // read epoch (ordered before t0's write) also triggers a read-write
  // report because it was never cleared.
  EXPECT_EQ(Sink2.size(), 2u);

  // The modified (paper) variant reports only the shortest race.
  replay(TraceBuilder().fork(0, 1).read(0, 5).write(0, 5).write(1, 5).take());
  EXPECT_EQ(Sink.size(), 1u);
}

TEST_F(FastTrackDetectorTest, ReadEpochPromotionAfterOrderedRead) {
  // Reads ordered by a lock stay an epoch (no map inflation): verify via
  // metadata bytes staying flat (no heap allocation for a map).
  replay(TraceBuilder()
             .fork(0, 1)
             .acq(0, 9)
             .read(0, 5)
             .rel(0, 9)
             .acq(1, 9)
             .read(1, 5)
             .rel(1, 9)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(FastTrackDetectorTest, VolatilesOrderAccesses) {
  replay(TraceBuilder()
             .fork(0, 1)
             .write(0, 5)
             .volWrite(0, 2)
             .volRead(1, 2)
             .write(1, 5)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(FastTrackDetectorTest, RaceReportedOncePerShortestPair) {
  // After reporting the write-write race, the metadata moves to the last
  // write; a third ordered write does not re-report the old pair.
  replay(TraceBuilder()
             .fork(0, 1)
             .write(0, 5, 50)
             .write(1, 5, 51)
             .write(1, 5, 52)
             .take());
  // Second t1 write is same-thread-ordered after the first: no new race...
  // but note it is in the same epoch only if no sync happened; either way
  // no new pair appears.
  EXPECT_EQ(Sink.size(), 1u);
}

TEST_F(FastTrackDetectorTest, JoinMakesChildWritesVisible) {
  replay(TraceBuilder()
             .fork(0, 1)
             .write(1, 5)
             .join(0, 1)
             .write(0, 5)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(FastTrackDetectorTest, MetadataSmallerThanGenericStyle) {
  // FastTrack var metadata is O(1) for totally ordered accesses.
  replay(TraceBuilder().write(0, 1).write(0, 2).write(0, 3).take());
  EXPECT_GT(D.liveMetadataBytes(), 0u);
}

} // namespace
