//===- tests/detectors/AllocationGuardTest.cpp ----------------------------==//
//
// Verifies the arena claim directly: once a detector's tables are warm,
// replaying an access batch performs ZERO general-purpose heap
// allocations -- spilled clocks, read-map entries, and table growth all
// recycle through the detector's Arena. The guard is a global
// operator new/delete replacement that counts every heap allocation in
// the process; the measured window contains only accessBatch calls.
//
//===----------------------------------------------------------------------===//

#include "detectors/FastTrackDetector.h"
#include "detectors/GenericDetector.h"
#include "detectors/LiteRaceDetector.h"
#include "detectors/PacerDetector.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

namespace {
std::atomic<uint64_t> HeapAllocCount{0};
} // namespace

// Global replacements with external linkage: every operator-new in the
// test binary (detectors, gtest, the standard library) routes through
// these counters. Only this translation unit may define them.
void *operator new(std::size_t Size) {
  HeapAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size ? Size : 1))
    return P;
  std::abort(); // -fno-exceptions: cannot throw bad_alloc.
}
void *operator new[](std::size_t Size) { return ::operator new(Size); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace pacer;
using namespace pacer::test;

namespace {

// A trace whose accesses exercise spilled state: more threads than the
// VectorClock SSO width would be sync-heavy, so instead many variables
// with cross-thread sharing inflate read maps and grow the var tables.
Trace accessHeavyTrace() {
  TraceBuilder B;
  constexpr uint32_t Threads = 8;
  constexpr uint32_t Vars = 64;
  for (uint32_t T = 0; T < Threads; ++T)
    for (uint32_t V = 0; V < Vars; ++V)
      B.read(T, V);
  for (uint32_t T = 0; T < Threads; ++T)
    for (uint32_t V = 0; V < Vars; ++V)
      if ((V % Threads) == T)
        B.write(T, V);
  return B.take();
}

// Replays sync-free warmup passes, then measures heap allocations across
// one more identical accessBatch window.
uint64_t heapAllocsInWarmWindow(Detector &D, const Trace &T) {
  for (uint32_t Tid = 0; Tid < 8; ++Tid)
    D.threadBegin(Tid);
  std::span<const Action> Accesses(T);
  // Two warm passes: the first sizes every table, the second confirms the
  // sizes are stable before the counted pass.
  D.accessBatch(Accesses, AccessShard::all());
  D.accessBatch(Accesses, AccessShard::all());
  uint64_t Before = HeapAllocCount.load(std::memory_order_relaxed);
  D.accessBatch(Accesses, AccessShard::all());
  return HeapAllocCount.load(std::memory_order_relaxed) - Before;
}

TEST(AllocationGuardTest, CountersSeeThisTestsOwnAllocations) {
  // Sanity: the replacement really is installed.
  uint64_t Before = HeapAllocCount.load(std::memory_order_relaxed);
  auto *P = new int(42);
  EXPECT_GT(HeapAllocCount.load(std::memory_order_relaxed), Before);
  delete P;
}

TEST(AllocationGuardTest, FastTrackAccessPathIsHeapFree) {
  Trace T = accessHeavyTrace();
  NullRaceSink Sink; // Race storage would allocate; count the detector only.
  FastTrackDetector D(Sink);
  EXPECT_EQ(heapAllocsInWarmWindow(D, T), 0u);
}

TEST(AllocationGuardTest, GenericAccessPathIsHeapFree) {
  Trace T = accessHeavyTrace();
  NullRaceSink Sink; // Race storage would allocate; count the detector only.
  GenericDetector D(Sink);
  EXPECT_EQ(heapAllocsInWarmWindow(D, T), 0u);
}

TEST(AllocationGuardTest, PacerSamplingAccessPathIsHeapFree) {
  Trace T = accessHeavyTrace();
  NullRaceSink Sink; // Race storage would allocate; count the detector only.
  PacerDetector D(Sink);
  D.beginSamplingPeriod(); // Sampling on: the full FastTrack-style path.
  EXPECT_EQ(heapAllocsInWarmWindow(D, T), 0u);
}

TEST(AllocationGuardTest, PacerNonSamplingFastPathIsHeapFree) {
  Trace T = accessHeavyTrace();
  NullRaceSink Sink; // Race storage would allocate; count the detector only.
  PacerDetector D(Sink);
  // Never sampling: the inlined fast path must allocate nothing at all,
  // warm or cold.
  uint64_t Before = HeapAllocCount.load(std::memory_order_relaxed);
  D.accessBatch(std::span<const Action>(T), AccessShard::all());
  EXPECT_EQ(HeapAllocCount.load(std::memory_order_relaxed) - Before, 0u);
}

TEST(AllocationGuardTest, LiteRaceAccessPathIsHeapFree) {
  Trace T = accessHeavyTrace();
  NullRaceSink Sink; // Race storage would allocate; count the detector only.
  LiteRaceDetector D(Sink, /*SiteToMethod=*/{}, /*Seed=*/7);
  EXPECT_EQ(heapAllocsInWarmWindow(D, T), 0u);
}

} // namespace
