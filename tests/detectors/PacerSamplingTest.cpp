//===- tests/detectors/PacerSamplingTest.cpp ------------------------------==//
//
// PACER's synchronization-operation machinery: version epochs, version
// vectors, fast joins, shallow/deep copies, clock sharing, and cloning
// (Section 3.2, Algorithms 9-11, 16, Table 7).
//
//===----------------------------------------------------------------------===//

#include "detectors/PacerDetector.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

class PacerSamplingTest : public ::testing::Test {
protected:
  CollectingSink Sink;
  PacerDetector D{Sink};

  void replay(Trace T) { replayInto(D, T); }
};

TEST_F(PacerSamplingTest, ReleaseSharesClockOutsideSampling) {
  replay(TraceBuilder().acq(0, 1).rel(0, 1).take());
  EXPECT_EQ(D.lockClockKeyForTest(1), D.threadClockKeyForTest(0));
  EXPECT_EQ(D.stats().ShallowCopiesNonSampling, 1u);
  EXPECT_EQ(D.stats().DeepCopiesNonSampling, 0u);
}

TEST_F(PacerSamplingTest, ReleaseDeepCopiesWhileSampling) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().acq(0, 1).rel(0, 1).take());
  EXPECT_NE(D.lockClockKeyForTest(1), D.threadClockKeyForTest(0));
  EXPECT_EQ(D.stats().DeepCopiesSampling, 1u);
  EXPECT_EQ(D.stats().ShallowCopiesSampling, 0u);
}

TEST_F(PacerSamplingTest, MultipleReleasesShareOnePayload) {
  // Figure 2: in a timeless period both lock releases share the thread's
  // clock payload.
  replay(TraceBuilder().acq(0, 1).rel(0, 1).acq(0, 2).rel(0, 2).take());
  EXPECT_EQ(D.lockClockKeyForTest(1), D.lockClockKeyForTest(2));
  EXPECT_EQ(D.lockClockKeyForTest(1), D.threadClockKeyForTest(0));
}

TEST_F(PacerSamplingTest, ReleaseSetsVersionEpoch) {
  replay(TraceBuilder().acq(0, 1).rel(0, 1).take());
  VersionEpoch VEpoch = D.lockVersionEpochForTest(1);
  EXPECT_FALSE(VEpoch.isTop());
  EXPECT_EQ(VEpoch.tid(), 0u);
  EXPECT_EQ(VEpoch.version(), D.threadVersionsForTest(0).get(0));
}

TEST_F(PacerSamplingTest, Figure2RedundantAcquireIsFastJoin) {
  // Thread 1 releases locks 1 and 2 with the same clock version; thread 2
  // pays one slow join for lock 1, then lock 2's version epoch proves
  // redundancy: a fast join.
  replay(TraceBuilder().fork(0, 1).fork(0, 2).take());
  DetectorStats Before = D.stats();
  replay(TraceBuilder()
             .acq(1, 1)
             .rel(1, 1)
             .acq(1, 2)
             .rel(1, 2)
             .acq(2, 1) // Slow join: new version of thread 1's clock.
             .acq(2, 2) // Fast join: version already received.
             .take());
  const DetectorStats &After = D.stats();
  // t1's two acquires hit bottom version epochs: fast. t2: one slow, one
  // fast.
  EXPECT_EQ(After.FastJoinsNonSampling - Before.FastJoinsNonSampling, 3u);
  EXPECT_EQ(After.SlowJoinsNonSampling - Before.SlowJoinsNonSampling, 1u);
}

TEST_F(PacerSamplingTest, RepeatedAcquireReleasePairStaysFast) {
  // A hot lock handed back and forth without clock changes converges:
  // after the first exchange, all joins are fast.
  replay(TraceBuilder().fork(0, 1).fork(0, 2).take());
  replay(TraceBuilder().acq(1, 1).rel(1, 1).acq(2, 1).rel(2, 1).take());
  DetectorStats Before = D.stats();
  replay(TraceBuilder().acq(1, 1).rel(1, 1).acq(2, 1).rel(2, 1).take());
  const DetectorStats &After = D.stats();
  EXPECT_EQ(After.SlowJoinsNonSampling, Before.SlowJoinsNonSampling + 2)
      << "each thread pays one last slow join while the clocks converge";
  replay(TraceBuilder().acq(1, 1).rel(1, 1).acq(2, 1).rel(2, 1).take());
  const DetectorStats &Third = D.stats();
  EXPECT_EQ(Third.SlowJoinsNonSampling, After.SlowJoinsNonSampling)
      << "converged: every further join is fast";
}

TEST_F(PacerSamplingTest, SbeginIncrementsEveryStartedThreadClock) {
  replay(TraceBuilder().fork(0, 1).take());
  uint32_t T0 = D.threadClockForTest(0).get(0);
  uint32_t T1 = D.threadClockForTest(1).get(1);
  D.beginSamplingPeriod();
  EXPECT_EQ(D.threadClockForTest(0).get(0), T0 + 1);
  EXPECT_EQ(D.threadClockForTest(1).get(1), T1 + 1);
}

TEST_F(PacerSamplingTest, SbeginClonesSharedClocks) {
  replay(TraceBuilder().acq(0, 1).rel(0, 1).take());
  ASSERT_EQ(D.lockClockKeyForTest(1), D.threadClockKeyForTest(0));
  uint64_t ClonesBefore = D.stats().ClockClones;
  D.beginSamplingPeriod(); // Increment must clone, not mutate the share.
  EXPECT_NE(D.lockClockKeyForTest(1), D.threadClockKeyForTest(0));
  EXPECT_GT(D.stats().ClockClones, ClonesBefore);
  // The lock's snapshot kept its old value.
  const VectorClock *LockClock = D.lockClockForTest(1);
  ASSERT_NE(LockClock, nullptr);
  EXPECT_EQ(LockClock->get(0), D.threadClockForTest(0).get(0) - 1);
}

TEST_F(PacerSamplingTest, NoIncrementsOutsideSampling) {
  replay(TraceBuilder().fork(0, 1).take());
  uint32_t Clock0 = D.threadClockForTest(0).get(0);
  replay(TraceBuilder()
             .acq(0, 1)
             .rel(0, 1)
             .acq(0, 1)
             .rel(0, 1)
             .volWrite(0, 2)
             .take());
  EXPECT_EQ(D.threadClockForTest(0).get(0), Clock0)
      << "timeless period: releases and volatile writes do not advance "
         "logical time";
}

TEST_F(PacerSamplingTest, IncrementsResumeDuringSampling) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().acq(0, 1).take()); // Registers thread 0.
  uint32_t Clock0 = D.threadClockForTest(0).get(0);
  replay(TraceBuilder().rel(0, 1).take());
  EXPECT_EQ(D.threadClockForTest(0).get(0), Clock0 + 1);
}

TEST_F(PacerSamplingTest, VolatileConcurrentWritesProduceTopVersionEpoch) {
  replay(TraceBuilder().fork(0, 1).fork(0, 2).take());
  // t1's volatile write installs t1's clock (version epoch v@1); t2's
  // concurrent volatile write joins into it: no single thread's version
  // describes the result.
  replay(TraceBuilder().volWrite(1, 3).take());
  EXPECT_FALSE(D.volatileVersionEpochForTest(3).isTop());
  EXPECT_EQ(D.volatileVersionEpochForTest(3).tid(), 1u);
  replay(TraceBuilder().volWrite(2, 3).take());
  EXPECT_TRUE(D.volatileVersionEpochForTest(3).isTop());
}

TEST_F(PacerSamplingTest, VolatileRedundantWriteStaysShallow) {
  // Same thread writes the volatile twice: the second write's join is
  // subsumed (version epoch matches), a shallow copy.
  replay(TraceBuilder().fork(0, 1).volWrite(1, 3).take());
  DetectorStats Before = D.stats();
  replay(TraceBuilder().volWrite(1, 3).take());
  const DetectorStats &After = D.stats();
  EXPECT_EQ(After.FastJoinsNonSampling - Before.FastJoinsNonSampling, 1u);
  EXPECT_EQ(After.ShallowCopiesNonSampling - Before.ShallowCopiesNonSampling,
            1u);
}

TEST_F(PacerSamplingTest, VolatileReadAfterTopUsesSlowJoin) {
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .volWrite(1, 3)
             .volWrite(2, 3)
             .take());
  ASSERT_TRUE(D.volatileVersionEpochForTest(3).isTop());
  DetectorStats Before = D.stats();
  replay(TraceBuilder().volRead(0, 3).take());
  const DetectorStats &After = D.stats();
  EXPECT_EQ(After.SlowJoinsNonSampling - Before.SlowJoinsNonSampling, 1u)
      << "top version epoch can never prove redundancy";
}

TEST_F(PacerSamplingTest, VersionFastJoinsDisabledAblation) {
  PacerConfig Config;
  Config.UseVersionFastJoins = false;
  CollectingSink Sink2;
  PacerDetector NoVersions(Sink2, Config);
  replayInto(NoVersions, TraceBuilder()
                             .fork(0, 1)
                             .acq(1, 1)
                             .rel(1, 1)
                             .acq(1, 1)
                             .rel(1, 1)
                             .take());
  EXPECT_EQ(NoVersions.stats().FastJoinsNonSampling, 0u);
  EXPECT_GT(NoVersions.stats().SlowJoinsNonSampling, 0u);
}

TEST_F(PacerSamplingTest, ClockSharingDisabledAblation) {
  PacerConfig Config;
  Config.UseClockSharing = false;
  CollectingSink Sink2;
  PacerDetector NoSharing(Sink2, Config);
  replayInto(NoSharing, TraceBuilder().acq(0, 1).rel(0, 1).take());
  EXPECT_EQ(NoSharing.stats().ShallowCopiesNonSampling, 0u);
  EXPECT_EQ(NoSharing.stats().DeepCopiesNonSampling, 1u);
}

TEST_F(PacerSamplingTest, SharedClockPayloadCountedOnceInSpace) {
  // Sharing must make lock metadata nearly free in non-sampling periods.
  PacerConfig NoSharingConfig;
  NoSharingConfig.UseClockSharing = false;
  CollectingSink SinkA, SinkB;
  PacerDetector Sharing(SinkA);
  PacerDetector NoSharing(SinkB, NoSharingConfig);
  // Give the thread a wide clock so payload size dominates.
  Trace Setup = TraceBuilder().fork(0, 40).take();
  Trace Locks;
  for (LockId Lock = 0; Lock < 32; ++Lock) {
    Locks.push_back({ActionKind::Acquire, 40, Lock, InvalidId});
    Locks.push_back({ActionKind::Release, 40, Lock, InvalidId});
  }
  replayInto(Sharing, Setup);
  replayInto(Sharing, Locks);
  replayInto(NoSharing, Setup);
  replayInto(NoSharing, Locks);
  EXPECT_LT(Sharing.liveMetadataBytes(), NoSharing.liveMetadataBytes());
}

TEST_F(PacerSamplingTest, ForkAndJoinPropagateVersions) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).take());
  // Child received version of parent's clock.
  EXPECT_GE(D.threadVersionsForTest(1).get(0), 1u);
  replay(TraceBuilder().join(0, 1).take());
  EXPECT_GE(D.threadVersionsForTest(0).get(1), 1u);
}

} // namespace
