//===- tests/detectors/WellFormednessTest.cpp -----------------------------==//
//
// Machine-checks the Appendix B invariants after every single transition
// of randomly generated executions with random sampling-period boundaries:
//
//  * Definition 1 (well-formedness): every synchronization object's and
//    every variable's recorded clock components are bounded by the owning
//    thread's own clock; same for versions.
//  * Definition 2 (strict well-formedness) while inside a sampling period:
//    other objects' copies of a thread's component are strictly below the
//    thread's own.
//  * Lemma 2/3 (monotonicity): thread clocks and versions never decrease.
//  * Lemma 7: Ver(o) <= C_t.ver implies S_o.vc <= C_t.vc.
//
//===----------------------------------------------------------------------===//

#include "detectors/PacerDetector.h"
#include "runtime/Runtime.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"
#include "support/Rng.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

class WellFormednessChecker {
public:
  WellFormednessChecker(const PacerDetector &D, const CompiledWorkload &W)
      : D(D), W(W) {}

  void checkAll(bool Sampling, size_t EventIndex) {
    size_t Threads = D.slotCount();
    for (ThreadId T = 0; T < Threads; ++T) {
      const VectorClock &OwnClock = D.threadClockForTest(T);
      const VersionVector &OwnVer = D.threadVersionsForTest(T);
      uint32_t OwnTime = OwnClock.get(T);
      uint32_t OwnVersion = OwnVer.get(T);
      if (OwnTime == 0)
        continue; // Thread slot allocated but the thread never started.

      // Monotonicity (Lemmas 2-3).
      if (T < LastClock.size()) {
        ASSERT_GE(OwnTime, LastClock[T]) << "clock regressed at event "
                                         << EventIndex;
        ASSERT_GE(OwnVersion, LastVer[T]) << "version regressed at event "
                                          << EventIndex;
      }

      // Criterion 1/6: other threads' copies bounded by own components.
      for (ThreadId U = 0; U < Threads; ++U) {
        if (U == T)
          continue;
        const VectorClock &Other = D.threadClockForTest(U);
        const VersionVector &OtherVer = D.threadVersionsForTest(U);
        ASSERT_LE(Other.get(T), OwnTime) << "criterion 1 at " << EventIndex;
        ASSERT_LE(OtherVer.get(T), OwnVersion)
            << "criterion 6 at " << EventIndex;
        if (Sampling)
          ASSERT_LT(Other.get(T), OwnTime)
              << "strict criterion 2 at " << EventIndex;
      }

      // Criteria 2/5 (+ strict 3/4): lock and volatile clocks bounded.
      for (LockId Lock = 0; Lock < W.spec().Locks; ++Lock) {
        if (const VectorClock *Clock = D.lockClockForTest(Lock)) {
          ASSERT_LE(Clock->get(T), OwnTime)
              << "lock criterion 2 at " << EventIndex;
          if (Sampling)
            ASSERT_LT(Clock->get(T), OwnTime)
                << "strict lock criterion 3 at " << EventIndex;
        }
      }
      for (VolatileId Vol = 0; Vol < W.spec().Volatiles; ++Vol) {
        if (const VectorClock *Clock = D.volatileClockForTest(Vol)) {
          ASSERT_LE(Clock->get(T), OwnTime)
              << "volatile criterion 5 at " << EventIndex;
          if (Sampling)
            ASSERT_LT(Clock->get(T), OwnTime)
                << "strict volatile criterion 4 at " << EventIndex;
        }
      }

      // Criteria 3-4: variable metadata bounded.
      for (VarId Var = 0; Var < W.numVars(); ++Var) {
        Epoch Write = D.writeEpochForTest(Var);
        if (!Write.isNone() && Write.tid() == T)
          ASSERT_LE(Write.clockValue(), OwnTime)
              << "criterion 4 at " << EventIndex;
        if (const ReadMap *R = D.readMapForTest(Var))
          R->forEach([&](const ReadEntry &Entry) {
            if (Entry.Tid == T)
              ASSERT_LE(Entry.Clock, OwnTime)
                  << "criterion 3 at " << EventIndex;
          });
      }

      // Lemma 7 for locks and volatiles against thread T.
      for (LockId Lock = 0; Lock < W.spec().Locks; ++Lock) {
        VersionEpoch VEpoch = D.lockVersionEpochForTest(Lock);
        const VectorClock *Clock = D.lockClockForTest(Lock);
        if (Clock && VEpoch.precedes(OwnVer))
          ASSERT_TRUE(Clock->leq(OwnClock)) << "Lemma 7 at " << EventIndex;
      }
      for (VolatileId Vol = 0; Vol < W.spec().Volatiles; ++Vol) {
        VersionEpoch VEpoch = D.volatileVersionEpochForTest(Vol);
        const VectorClock *Clock = D.volatileClockForTest(Vol);
        if (Clock && VEpoch.precedes(OwnVer))
          ASSERT_TRUE(Clock->leq(OwnClock))
              << "volatile Lemma 7 at " << EventIndex;
      }
    }

    // Update monotonicity snapshots.
    LastClock.resize(Threads, 0);
    LastVer.resize(Threads, 0);
    for (ThreadId T = 0; T < Threads; ++T) {
      LastClock[T] = D.threadClockForTest(T).get(T);
      LastVer[T] = D.threadVersionsForTest(T).get(T);
    }
  }

private:
  const PacerDetector &D;
  const CompiledWorkload &W;
  std::vector<uint32_t> LastClock;
  std::vector<uint32_t> LastVer;
};

class WellFormednessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WellFormednessTest, InvariantsHoldAfterEveryTransition) {
  WorkloadSpec Spec = tinyTestWorkload();
  Spec.WorkerThreads = 3;
  Spec.OpsPerWorker = 400; // Checking is O(threads * state) per event.
  CompiledWorkload Workload(Spec);
  Trace T = generateTrace(Workload, GetParam());

  NullRaceSink Sink;
  PacerDetector D(Sink);
  Runtime RT(D);
  WellFormednessChecker Checker(D, Workload);

  // Random sampling boundaries, independent of the trace.
  Rng Boundary(GetParam() * 977 + 5);
  bool Sampling = false;
  for (size_t I = 0; I != T.size(); ++I) {
    if (Boundary.nextBool(0.01)) {
      if (Sampling)
        D.endSamplingPeriod();
      Sampling = Boundary.nextBool(0.5);
      if (Sampling)
        D.beginSamplingPeriod();
    }
    RT.dispatch(T[I]);
    Checker.checkAll(Sampling, I);
    if (::testing::Test::HasFatalFailure())
      return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WellFormednessTest,
                         ::testing::Range<uint64_t>(1, 9));

} // namespace
