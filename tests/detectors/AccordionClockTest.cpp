//===- tests/detectors/AccordionClockTest.cpp -----------------------------==//
//
// Accordion clocks (the production improvement the paper's Section 5.1
// cites): thread-clock slots are recycled once a joined or exited
// thread's final clock is dominated by every live thread. Recycling
// sweeps run automatically after every Join and ThreadExit the runtime
// dispatches, so most tests just replay and observe. The tests verify
// soundness (no false positives or misattributed reports across
// recycling), the domination precondition, version-epoch invalidation,
// and the space effect (slots bounded by live threads, not total
// threads).
//
//===----------------------------------------------------------------------===//

#include "detectors/FastTrackDetector.h"
#include "detectors/PacerDetector.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

PacerConfig accordionConfig() {
  PacerConfig Config;
  Config.UseAccordionClocks = true;
  return Config;
}

class AccordionClockTest : public ::testing::Test {
protected:
  CollectingSink Sink;
  PacerDetector D{Sink, accordionConfig()};

  void replay(Trace T) { replayInto(D, T); }
};

TEST_F(AccordionClockTest, JoinedThreadSlotIsRecycled) {
  D.beginSamplingPeriod();
  // The parent joined the child, so the child's final clock is dominated
  // and the automatic post-join sweep reclaims the slot.
  replay(TraceBuilder().fork(0, 1).write(1, 5).join(0, 1).take());
  EXPECT_EQ(D.liveSlotCount(), 1u) << "only main is live";
  // The next thread reuses the slot: total slots stay at 2.
  replay(TraceBuilder().fork(0, 2).take());
  EXPECT_EQ(D.slotCount(), 2u);
  EXPECT_EQ(D.liveSlotCount(), 2u);
}

TEST_F(AccordionClockTest, RecycleRequiresDominationByAllLiveThreads) {
  D.beginSamplingPeriod();
  // Child 2 stays live and has NOT synchronized with child 1's final
  // clock, so the automatic sweep at the join must leave slot 1 dead but
  // unreclaimed, and a manual sweep must agree.
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .write(1, 5)
             .join(0, 1)
             .take());
  EXPECT_EQ(D.recycleDeadSlots(), 0u)
      << "thread 2 does not dominate thread 1's final clock";
  EXPECT_EQ(D.liveSlotCount(), 2u);
  EXPECT_EQ(D.slotCount(), 3u) << "dead slot 1 still allocated";
  // Once thread 2 receives thread 1's clock (via a lock handoff from
  // main, which holds it after the join), recycling proceeds. Lock
  // operations trigger no automatic sweep, so the manual call observes
  // the flip from blocked to reclaimable.
  replay(TraceBuilder().acq(0, 9).rel(0, 9).acq(2, 9).rel(2, 9).take());
  EXPECT_EQ(D.recycleDeadSlots(), 1u);
}

TEST_F(AccordionClockTest, NoFalseRaceAcrossRecycledSlot) {
  D.beginSamplingPeriod();
  // Thread 1 writes x; after the join recycles its slot, thread 2 reuses
  // the slot and writes x. The accesses are ordered (fork after join),
  // so no race may be reported even though both map to the same slot.
  replay(TraceBuilder().fork(0, 1).write(1, 5).join(0, 1).take());
  ASSERT_EQ(D.liveSlotCount(), 1u);
  replay(TraceBuilder().fork(0, 2).write(2, 5).join(0, 2).take());
  EXPECT_EQ(D.slotCount(), 2u) << "thread 2 reused the recycled slot";
  EXPECT_TRUE(Sink.empty());
}

TEST_F(AccordionClockTest, TrueRaceAcrossRecycledSlotStillReported) {
  D.beginSamplingPeriod();
  // Thread 3 stays concurrent with thread 2, which reuses thread 1's
  // recycled slot; their conflicting accesses must still be reported,
  // with the *program* thread ids.
  replay(TraceBuilder().fork(0, 1).join(0, 1).take());
  ASSERT_EQ(D.liveSlotCount(), 1u);
  replay(TraceBuilder()
             .fork(0, 3)
             .fork(0, 2) // Reuses slot 1.
             .write(2, 5, 52)
             .write(3, 5, 53)
             .take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstThread, 2u) << "program id, not slot id";
  EXPECT_EQ(Sink.Reports[0].SecondThread, 3u);
}

TEST_F(AccordionClockTest, RecycleDiscardsRetiredThreadMetadata) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).write(1, 5).read(1, 6).take());
  EXPECT_EQ(D.trackedVariableCount(), 2u);
  replay(TraceBuilder().join(0, 1).take());
  EXPECT_EQ(D.trackedVariableCount(), 0u)
      << "a dominated thread's accesses cannot start a race: discard";
}

TEST_F(AccordionClockTest, ThreadExitRetiresTheSlot) {
  D.beginSamplingPeriod();
  // An explicit exit (no join yet) retires the slot; it is reclaimed as
  // soon as every live thread dominates it -- here immediately, because
  // only main remains and fork edges order it after... they do not: main
  // does not see child work until the join. The exit sweep must NOT
  // reclaim, the join sweep must.
  replay(TraceBuilder().fork(0, 1).write(1, 5).exit(1).take());
  EXPECT_EQ(D.liveSlotCount(), 1u) << "child retired at exit";
  EXPECT_EQ(D.slotCount(), 2u) << "not dominated by main before the join";
  replay(TraceBuilder().join(0, 1).take());
  EXPECT_EQ(D.trackedVariableCount(), 0u);
  replay(TraceBuilder().fork(0, 2).take());
  EXPECT_EQ(D.slotCount(), 2u) << "slot reused after the join sweep";
}

TEST_F(AccordionClockTest, RecycleKeepsOtherThreadsMetadata) {
  D.beginSamplingPeriod();
  replay(TraceBuilder()
             .fork(0, 1)
             .write(0, 7) // Main's metadata must survive.
             .write(1, 5)
             .join(0, 1)
             .take());
  EXPECT_EQ(D.trackedVariableCount(), 1u);
  EXPECT_EQ(D.writeEpochForTest(7).tid(), 0u);
}

TEST_F(AccordionClockTest, WaveWorkloadBoundsSlotsByLiveThreads) {
  // hsqldb-style: many short-lived workers in bounded waves. With
  // accordion clocks the slot count tracks the wave size, not the total;
  // the automatic join sweeps make this hold with no manual recycling.
  WorkloadSpec Spec = scaleWorkload(hsqldbModel(), 0.1);
  CompiledWorkload Workload(Spec);
  Trace T = generateTrace(Workload, 3);

  CollectingSink PlainSink;
  PacerDetector Plain(PlainSink); // No accordion.
  Plain.beginSamplingPeriod();
  CollectingSink AccordionSink;
  PacerDetector Accordion(AccordionSink, accordionConfig());
  Accordion.beginSamplingPeriod();

  Runtime PlainRT(Plain), AccordionRT(Accordion);
  for (const Action &A : T) {
    PlainRT.dispatch(A);
    AccordionRT.dispatch(A);
  }

  EXPECT_EQ(Plain.slotCount(), Workload.totalThreads());
  EXPECT_EQ(Plain.peakSlotCount(), Workload.totalThreads());
  // Intra-wave workers only become dominated when their wave ends, so the
  // structural floor is about two waves' worth of slots; compaction then
  // keeps the allocated vector near the peak of the live count.
  EXPECT_LE(Accordion.peakSlotCount(), 2u * Spec.MaxLiveWorkers + 2)
      << "slots must be bounded by live threads (waves of "
      << Spec.MaxLiveWorkers << "), not total threads";
  EXPECT_LE(Accordion.slotCount(), Accordion.peakSlotCount());
  EXPECT_LT(Accordion.liveMetadataBytes(), Plain.liveMetadataBytes());
}

TEST_F(AccordionClockTest, ForkJoinWorkloadBoundsSlotsByLiveThreads) {
  // The dedicated stress family: hundreds of short-lived tasks in trees,
  // live threads capped. Slots must track the cap.
  WorkloadSpec Spec = forkJoinModelWithTasks(200);
  CompiledWorkload Workload(Spec);
  Trace T = generateTrace(Workload, 7);

  CollectingSink AccordionSink;
  PacerDetector Accordion(AccordionSink, accordionConfig());
  Accordion.beginSamplingPeriod();
  Runtime RT(Accordion);
  for (const Action &A : T)
    RT.dispatch(A);

  EXPECT_GT(Workload.totalThreads(), 4u * Spec.MaxLiveWorkers)
      << "stress shape: far more tasks than live threads";
  EXPECT_LE(Accordion.peakSlotCount(), 2u * Spec.MaxLiveWorkers + 2);
}

TEST_F(AccordionClockTest, SameRacesWithAndWithoutAccordion) {
  // Recycling must not change which races are reported (only metadata of
  // provably ordered accesses is discarded).
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    CompiledWorkload Workload(tinyTestWorkload());
    Trace T = generateTrace(Workload, Seed);

    CollectingSink PlainSink, AccordionSink;
    PacerDetector Plain(PlainSink);
    PacerDetector Accordion(AccordionSink, accordionConfig());
    Plain.beginSamplingPeriod();
    Accordion.beginSamplingPeriod();
    Runtime PlainRT(Plain), AccordionRT(Accordion);
    for (const Action &A : T) {
      PlainRT.dispatch(A);
      AccordionRT.dispatch(A);
    }
    EXPECT_EQ(PlainSink.keys(), AccordionSink.keys()) << "seed " << Seed;
    EXPECT_EQ(PlainSink.size(), AccordionSink.size()) << "seed " << Seed;
  }
}

TEST_F(AccordionClockTest, VersionEpochOfRecycledSlotInvalidated) {
  // A lock whose version epoch names the recycled slot must fall back to
  // the slow path rather than falsely proving redundancy for the slot's
  // next occupant.
  replay(TraceBuilder()
             .fork(0, 1)
             .acq(1, 9)
             .rel(1, 9) // vepoch names slot 1.
             .join(0, 1)
             .take());
  ASSERT_EQ(D.liveSlotCount(), 1u);
  EXPECT_TRUE(D.lockVersionEpochForTest(9).isTop());
}

TEST_F(AccordionClockTest, DisabledConfigKeepsIdentityMapping) {
  CollectingSink Sink2;
  PacerDetector Plain(Sink2); // Accordion off.
  Plain.beginSamplingPeriod();
  replayInto(Plain, TraceBuilder().fork(0, 5).write(5, 3).join(0, 5).take());
  EXPECT_EQ(Plain.recycleDeadSlots(), 0u);
  EXPECT_EQ(Plain.slotCount(), 6u) << "slot == program thread id";
}

} // namespace
