//===- tests/detectors/GenericDetectorTest.cpp ----------------------------==//

#include "detectors/GenericDetector.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

class GenericDetectorTest : public ::testing::Test {
protected:
  CollectingSink Sink;
  GenericDetector D{Sink};

  void replay(Trace T) { replayInto(D, T); }
};

TEST_F(GenericDetectorTest, WriteWriteRaceDetected) {
  replay(TraceBuilder()
             .fork(0, 1)
             .write(0, /*Var=*/5, /*Site=*/50)
             .write(1, 5, 51)
             .take());
  ASSERT_EQ(Sink.size(), 1u);
  const RaceReport &Report = Sink.Reports[0];
  EXPECT_EQ(Report.Var, 5u);
  EXPECT_EQ(Report.FirstKind, AccessKind::Write);
  EXPECT_EQ(Report.SecondKind, AccessKind::Write);
  EXPECT_EQ(Report.FirstThread, 0u);
  EXPECT_EQ(Report.SecondThread, 1u);
  EXPECT_EQ(Report.FirstSite, 50u);
  EXPECT_EQ(Report.SecondSite, 51u);
}

TEST_F(GenericDetectorTest, WriteReadRaceDetected) {
  replay(TraceBuilder().fork(0, 1).write(0, 5).read(1, 5).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstKind, AccessKind::Write);
  EXPECT_EQ(Sink.Reports[0].SecondKind, AccessKind::Read);
}

TEST_F(GenericDetectorTest, ReadWriteRaceDetected) {
  replay(TraceBuilder().fork(0, 1).read(0, 5).write(1, 5).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstKind, AccessKind::Read);
  EXPECT_EQ(Sink.Reports[0].SecondKind, AccessKind::Write);
}

TEST_F(GenericDetectorTest, ReadReadNeverRaces) {
  replay(TraceBuilder().fork(0, 1).read(0, 5).read(1, 5).read(0, 5).take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(GenericDetectorTest, LockOrderingPreventsRace) {
  replay(TraceBuilder()
             .fork(0, 1)
             .acq(0, 9)
             .write(0, 5)
             .rel(0, 9)
             .acq(1, 9)
             .write(1, 5)
             .rel(1, 9)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(GenericDetectorTest, DifferentLocksDoNotOrder) {
  replay(TraceBuilder()
             .fork(0, 1)
             .acq(0, 1)
             .write(0, 5)
             .rel(0, 1)
             .acq(1, 2)
             .write(1, 5)
             .rel(1, 2)
             .take());
  EXPECT_EQ(Sink.size(), 1u);
}

TEST_F(GenericDetectorTest, ForkOrdersParentBeforeChild) {
  replay(TraceBuilder().write(0, 5).fork(0, 1).read(1, 5).take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(GenericDetectorTest, JoinOrdersChildBeforeParent) {
  replay(TraceBuilder().fork(0, 1).write(1, 5).join(0, 1).read(0, 5).take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(GenericDetectorTest, VolatileWriteThenReadOrders) {
  // t0 writes x, writes volatile v; t1 reads v, reads x: ordered.
  replay(TraceBuilder()
             .fork(0, 1)
             .write(0, 5)
             .volWrite(0, 3)
             .volRead(1, 3)
             .read(1, 5)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(GenericDetectorTest, VolatileReadAloneDoesNotOrder) {
  // Reading the volatile before the writer wrote it gives no edge.
  replay(TraceBuilder()
             .fork(0, 1)
             .volRead(1, 3)
             .read(1, 5)
             .write(0, 5)
             .volWrite(0, 3)
             .take());
  EXPECT_EQ(Sink.size(), 1u);
}

TEST_F(GenericDetectorTest, MultipleConcurrentReadsAllReportedAtWrite) {
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .read(1, 5, 51)
             .read(2, 5, 52)
             .write(0, 5, 50)
             .take());
  // Both reads race with the write.
  ASSERT_EQ(Sink.size(), 2u);
  std::set<RaceKey> Keys = Sink.keys();
  EXPECT_TRUE(Keys.count(RaceKey{50, 51}));
  EXPECT_TRUE(Keys.count(RaceKey{50, 52}));
}

TEST_F(GenericDetectorTest, SameThreadAccessesNeverRace) {
  replay(TraceBuilder().write(0, 5).read(0, 5).write(0, 5).take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(GenericDetectorTest, TransitiveHappensBefore) {
  // t0 -> t1 via lock 1, t1 -> t2 via lock 2; t0's write ordered before
  // t2's read transitively.
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .write(0, 5)
             .acq(0, 1)
             .rel(0, 1)
             .acq(1, 1)
             .rel(1, 1)
             .acq(1, 2)
             .rel(1, 2)
             .acq(2, 2)
             .rel(2, 2)
             .read(2, 5)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(GenericDetectorTest, StatsCountOperations) {
  replay(TraceBuilder()
             .fork(0, 1)
             .acq(1, 0)
             .read(1, 2)
             .write(1, 2)
             .rel(1, 0)
             .join(0, 1)
             .take());
  const DetectorStats &Stats = D.stats();
  EXPECT_EQ(Stats.SyncOps, 4u);
  EXPECT_EQ(Stats.totalReads(), 1u);
  EXPECT_EQ(Stats.totalWrites(), 1u);
}

TEST_F(GenericDetectorTest, MetadataBytesGrowWithVariables) {
  size_t Before = D.liveMetadataBytes();
  replay(TraceBuilder().write(0, 100).write(0, 200).take());
  EXPECT_GT(D.liveMetadataBytes(), Before);
}

TEST_F(GenericDetectorTest, ThreadClockAdvancesOnRelease) {
  replay(TraceBuilder().acq(0, 1).rel(0, 1).take());
  EXPECT_EQ(D.threadClock(0).get(0), 2u) << "initial 1 plus one release";
}

} // namespace
