//===- tests/detectors/VolatileSemanticsTest.cpp --------------------------==//
//
// Appendix C semantics: a volatile read is like a lock acquire and a
// volatile write like a release, except the write performs a *join* into
// the volatile's clock (not a copy) and a read need not be followed by a
// write on the same thread. Exercised across GENERIC, FastTrack, and
// PACER, including PACER's Algorithm 16 / Table 7 Rule 7-9 distinctions.
//
//===----------------------------------------------------------------------===//

#include "detectors/FastTrackDetector.h"
#include "detectors/GenericDetector.h"
#include "detectors/PacerDetector.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

/// Volatile writes JOIN into the volatile's clock: both writers'
/// histories accumulate, unlike a lock release which overwrites. A reader
/// after two writers is ordered after BOTH.
Trace twoPublishersOneReader() {
  return TraceBuilder()
      .fork(0, 1)
      .fork(0, 2)
      .fork(0, 3)
      .write(1, 5, 51) // t1's payload.
      .volWrite(1, 9)
      .write(2, 6, 62) // t2's payload.
      .volWrite(2, 9)  // Joins: volatile now carries t1 AND t2.
      .volRead(3, 9)
      .read(3, 5, 53) // Ordered after t1's write via the join.
      .read(3, 6, 63) // Ordered after t2's write too.
      .take();
}

template <typename DetectorT> void expectNoRace(const Trace &T) {
  CollectingSink Sink;
  DetectorT D(Sink);
  replayInto(D, T);
  EXPECT_TRUE(Sink.empty()) << "first: "
                            << (Sink.Reports.empty()
                                    ? ""
                                    : Sink.Reports[0].str());
}

TEST(VolatileSemanticsTest, WriteJoinsAccumulateAcrossWriters_Generic) {
  expectNoRace<GenericDetector>(twoPublishersOneReader());
}

TEST(VolatileSemanticsTest, WriteJoinsAccumulateAcrossWriters_FastTrack) {
  expectNoRace<FastTrackDetector>(twoPublishersOneReader());
}

TEST(VolatileSemanticsTest, WriteJoinsAccumulateAcrossWriters_PacerFull) {
  CollectingSink Sink;
  PacerDetector D(Sink);
  D.beginSamplingPeriod();
  replayInto(D, twoPublishersOneReader());
  EXPECT_TRUE(Sink.empty());
}

TEST(VolatileSemanticsTest, WriteJoinsAccumulateAcrossWriters_PacerTimeless) {
  // The same ordering must hold when everything happens in a non-sampling
  // period: joins still execute, only increments stop (Lemma 9).
  // Plant a sampled write first so a missing edge would be detected.
  CollectingSink Sink;
  PacerDetector D(Sink);
  D.beginSamplingPeriod();
  replayInto(D, TraceBuilder()
                    .fork(0, 1)
                    .fork(0, 2)
                    .fork(0, 3)
                    .write(1, 5, 51)
                    .take());
  D.endSamplingPeriod();
  replayInto(D, TraceBuilder()
                    .volWrite(1, 9)
                    .volWrite(2, 9)
                    .volRead(3, 9)
                    .write(3, 5, 53) // Ordered: discards, no report.
                    .take());
  EXPECT_TRUE(Sink.empty());
  EXPECT_EQ(D.trackedVariableCount(), 0u);
}

TEST(VolatileSemanticsTest, ReadWithoutWriteCreatesNoEdge) {
  // A volatile read before any write carries no history: no ordering.
  CollectingSink Sink;
  GenericDetector D(Sink);
  replayInto(D, TraceBuilder()
                    .fork(0, 1)
                    .volRead(1, 9)
                    .write(1, 5, 51)
                    .write(0, 5, 50)
                    .take());
  EXPECT_EQ(Sink.size(), 1u);
}

TEST(VolatileSemanticsTest, WriterNotOrderedAfterReader) {
  // Edges flow write -> read only: a reader's subsequent accesses do not
  // order a later writer's.
  CollectingSink Sink;
  GenericDetector D(Sink);
  replayInto(D, TraceBuilder()
                    .fork(0, 1)
                    .fork(0, 2)
                    .volWrite(1, 9)
                    .volRead(2, 9)
                    .write(2, 5, 52) // After its read.
                    .write(1, 5, 51) // Writer again: NOT ordered after t2.
                    .take());
  EXPECT_EQ(Sink.size(), 1u) << "reader-then-writer accesses race";
}

TEST(VolatileSemanticsTest, PacerVolatileSubsumedWriteKeepsVersionEpoch) {
  // Table 7 Rule 7/8: a write whose clock subsumes the volatile's leaves
  // a valid version epoch (a copy), enabling later fast joins.
  CollectingSink Sink;
  PacerDetector D(Sink);
  replayInto(D, TraceBuilder().fork(0, 1).volWrite(1, 9).take());
  VersionEpoch First = D.volatileVersionEpochForTest(9);
  EXPECT_FALSE(First.isTop());
  EXPECT_EQ(First.tid(), 1u);
  // Same writer again: still subsumed (nothing changed), epoch stays.
  replayInto(D, TraceBuilder().volWrite(1, 9).take());
  EXPECT_FALSE(D.volatileVersionEpochForTest(9).isTop());
}

TEST(VolatileSemanticsTest, PacerOrderedSecondWriterKeepsVersionEpoch) {
  // If the second writer is ordered AFTER the first (read the volatile
  // first), its clock subsumes the volatile's: Rule 8 applies, the epoch
  // switches to the second writer instead of going to top.
  CollectingSink Sink;
  PacerDetector D(Sink);
  replayInto(D, TraceBuilder()
                    .fork(0, 1)
                    .fork(0, 2)
                    .volWrite(1, 9)
                    .volRead(2, 9) // t2 now subsumes the volatile.
                    .volWrite(2, 9)
                    .take());
  VersionEpoch VEpoch = D.volatileVersionEpochForTest(9);
  EXPECT_FALSE(VEpoch.isTop());
  EXPECT_EQ(VEpoch.tid(), 2u);
}

TEST(VolatileSemanticsTest, PacerConcurrentWritersGoToTop) {
  // Rule 9: concurrent writers leave a clock that no single thread's
  // version describes.
  CollectingSink Sink;
  PacerDetector D(Sink);
  replayInto(D, TraceBuilder()
                    .fork(0, 1)
                    .fork(0, 2)
                    .volWrite(1, 9)
                    .volWrite(2, 9)
                    .take());
  EXPECT_TRUE(D.volatileVersionEpochForTest(9).isTop());
  // A third writer ordered after both (reads first) restores an epoch.
  replayInto(D, TraceBuilder().volRead(0, 9).volWrite(0, 9).take());
  EXPECT_FALSE(D.volatileVersionEpochForTest(9).isTop());
  EXPECT_EQ(D.volatileVersionEpochForTest(9).tid(), 0u);
}

TEST(VolatileSemanticsTest, VolatileChainTransitivity) {
  // x -> volatile A -> y -> volatile B -> z ordering chain across three
  // threads; all detectors agree there is no race.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .write(0, 5, 50)
                .volWrite(0, 1)
                .volRead(1, 1)
                .write(1, 5, 51)
                .volWrite(1, 2)
                .volRead(2, 2)
                .write(2, 5, 52)
                .take();
  expectNoRace<GenericDetector>(T);
  expectNoRace<FastTrackDetector>(T);
  CollectingSink Sink;
  PacerDetector Pacer(Sink);
  Pacer.beginSamplingPeriod();
  replayInto(Pacer, T);
  EXPECT_TRUE(Sink.empty());
}

TEST(VolatileSemanticsTest, VolatilesNeverRaceThemselves) {
  // Synchronization objects are always ordered: concurrent volatile
  // accesses must produce no reports in any detector.
  Trace T = TraceBuilder()
                .fork(0, 1)
                .fork(0, 2)
                .volWrite(1, 9)
                .volWrite(2, 9)
                .volRead(1, 9)
                .volRead(2, 9)
                .take();
  expectNoRace<GenericDetector>(T);
  expectNoRace<FastTrackDetector>(T);
  CollectingSink Sink;
  PacerDetector Pacer(Sink);
  Pacer.beginSamplingPeriod();
  replayInto(Pacer, T);
  EXPECT_TRUE(Sink.empty());
}

} // namespace
