//===- tests/detectors/DetectorEquivalenceTest.cpp ------------------------==//
//
// Cross-algorithm properties on randomly generated traces:
//
//  * A trace is race free under GENERIC iff FastTrack reports nothing
//    (FastTrack soundness/completeness, Section 2.2).
//  * PACER with sampling always on reports exactly FastTrack's reports
//    (PACER degenerates to FastTrack at r = 100%).
//  * PACER with sampling never on reports nothing and tracks nothing.
//  * At any sampling rate, PACER's distinct races are a subset of
//    GENERIC's (precision: no false positives).
//
//===----------------------------------------------------------------------===//

#include "detectors/FastTrackDetector.h"
#include "detectors/GenericDetector.h"
#include "detectors/PacerDetector.h"
#include "runtime/SamplingController.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

class DetectorEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
protected:
  Trace makeTrace() {
    CompiledWorkload Workload(tinyTestWorkload());
    return generateTrace(Workload, GetParam());
  }
};

TEST_P(DetectorEquivalenceTest, FastTrackAgreesWithGenericOnRaceFreedom) {
  Trace T = makeTrace();
  CollectingSink GenericSink, FastTrackSink;
  GenericDetector Generic(GenericSink);
  FastTrackDetector FastTrack(FastTrackSink);
  replayInto(Generic, T);
  replayInto(FastTrack, T);
  EXPECT_EQ(GenericSink.empty(), FastTrackSink.empty());
}

TEST_P(DetectorEquivalenceTest, FastTrackKeysSubsetOfGeneric) {
  Trace T = makeTrace();
  CollectingSink GenericSink, FastTrackSink;
  GenericDetector Generic(GenericSink);
  FastTrackDetector FastTrack(FastTrackSink);
  replayInto(Generic, T);
  replayInto(FastTrack, T);
  for (RaceKey Key : FastTrackSink.keys())
    EXPECT_TRUE(GenericSink.keys().count(Key))
        << "FastTrack key (" << Key.FirstSite << ", " << Key.SecondSite
        << ") unknown to GENERIC";
}

TEST_P(DetectorEquivalenceTest, PacerAt100PercentMatchesFastTrackExactly) {
  Trace T = makeTrace();
  CollectingSink FastTrackSink, PacerSink;
  FastTrackDetector FastTrack(FastTrackSink);
  PacerDetector Pacer(PacerSink);
  Pacer.beginSamplingPeriod();
  replayInto(FastTrack, T);
  replayInto(Pacer, T);
  ASSERT_EQ(FastTrackSink.size(), PacerSink.size());
  for (size_t I = 0; I != FastTrackSink.size(); ++I) {
    const RaceReport &A = FastTrackSink.Reports[I];
    const RaceReport &B = PacerSink.Reports[I];
    EXPECT_EQ(A.Var, B.Var);
    EXPECT_EQ(A.FirstKind, B.FirstKind);
    EXPECT_EQ(A.SecondKind, B.SecondKind);
    EXPECT_EQ(A.FirstThread, B.FirstThread);
    EXPECT_EQ(A.SecondThread, B.SecondThread);
    EXPECT_EQ(A.FirstSite, B.FirstSite);
    EXPECT_EQ(A.SecondSite, B.SecondSite);
  }
}

TEST_P(DetectorEquivalenceTest, PacerAtZeroReportsNothingTracksNothing) {
  Trace T = makeTrace();
  CollectingSink Sink;
  PacerDetector Pacer(Sink);
  replayInto(Pacer, T);
  EXPECT_TRUE(Sink.empty());
  EXPECT_EQ(Pacer.trackedVariableCount(), 0u);
  EXPECT_EQ(Pacer.stats().SlowJoinsSampling, 0u);
  EXPECT_EQ(Pacer.stats().DeepCopiesSampling, 0u);
}

TEST_P(DetectorEquivalenceTest, SampledPacerIsPrecise) {
  Trace T = makeTrace();
  CollectingSink GenericSink;
  GenericDetector Generic(GenericSink);
  replayInto(Generic, T);
  std::set<RaceKey> TrueKeys = GenericSink.keys();

  for (double Rate : {0.1, 0.35, 0.8}) {
    CollectingSink PacerSink;
    PacerDetector Pacer(PacerSink);
    SamplingConfig Config;
    Config.TargetRate = Rate;
    Config.PeriodBytes = 16 * 1024; // Frequent boundaries for small traces.
    SamplingController Controller(Config, GetParam() * 31 + 7);
    Runtime RT(Pacer, &Controller);
    RT.replay(T);
    for (RaceKey Key : PacerSink.keys())
      EXPECT_TRUE(TrueKeys.count(Key))
          << "PACER reported a false positive at rate " << Rate;
  }
}

TEST_P(DetectorEquivalenceTest, GenericTraceWithoutPlantedRacesIsRaceFree) {
  WorkloadSpec Spec = tinyTestWorkload();
  Spec.Races.clear();
  CompiledWorkload Workload(Spec);
  Trace T = generateTrace(Workload, GetParam());
  CollectingSink Sink;
  GenericDetector Generic(Sink);
  replayInto(Generic, T);
  EXPECT_TRUE(Sink.empty())
      << "lock-disciplined workload must be race free; first: "
      << (Sink.Reports.empty() ? "" : Sink.Reports[0].str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorEquivalenceTest,
                         ::testing::Range<uint64_t>(1, 21));

} // namespace
