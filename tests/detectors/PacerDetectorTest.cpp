//===- tests/detectors/PacerDetectorTest.cpp ------------------------------==//
//
// Semantics of PACER's read/write rules (Table 4) and its reporting
// guarantee: sampled shortest races are reported; races whose first access
// is not sampled are not (and their metadata is discarded).
//
//===----------------------------------------------------------------------===//

#include "detectors/PacerDetector.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

class PacerDetectorTest : public ::testing::Test {
protected:
  CollectingSink Sink;
  PacerDetector D{Sink};

  void replay(Trace T) { replayInto(D, T); }
};

TEST_F(PacerDetectorTest, AlwaysSamplingDetectsWriteWriteRace) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).write(0, 5, 50).write(1, 5, 51).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstSite, 50u);
  EXPECT_EQ(Sink.Reports[0].SecondSite, 51u);
}

TEST_F(PacerDetectorTest, AlwaysSamplingRespectsLockOrdering) {
  D.beginSamplingPeriod();
  replay(TraceBuilder()
             .fork(0, 1)
             .acq(0, 9)
             .write(0, 5)
             .rel(0, 9)
             .acq(1, 9)
             .write(1, 5)
             .rel(1, 9)
             .take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(PacerDetectorTest, NeverSamplingReportsAndRecordsNothing) {
  replay(TraceBuilder().fork(0, 1).write(0, 5).write(1, 5).read(1, 5).take());
  EXPECT_TRUE(Sink.empty());
  EXPECT_EQ(D.trackedVariableCount(), 0u);
  const DetectorStats &Stats = D.stats();
  EXPECT_EQ(Stats.WriteFastNonSampling, 2u);
  EXPECT_EQ(Stats.ReadFastNonSampling, 1u);
  EXPECT_EQ(Stats.WriteSlowSampling + Stats.WriteSlowNonSampling, 0u);
}

TEST_F(PacerDetectorTest, SampledWriteRacesWithLaterUnsampledRead) {
  // Figure 1's y: the write happens in the sampling period; the racing
  // read comes after the period ends. PACER must still report it.
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).write(0, 5, 50).take());
  D.endSamplingPeriod();
  replay(TraceBuilder().read(1, 5, 51).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstSite, 50u);
  EXPECT_EQ(Sink.Reports[0].SecondSite, 51u);
  EXPECT_EQ(Sink.Reports[0].FirstKind, AccessKind::Write);
  EXPECT_EQ(Sink.Reports[0].SecondKind, AccessKind::Read);
}

TEST_F(PacerDetectorTest, SampledWriteSurvivesManyPeriodsUntilRace) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).write(0, 5, 50).take());
  D.endSamplingPeriod();
  // Several empty sampling periods elapse; the metadata must survive
  // because no conflicting access supersedes it.
  for (int I = 0; I < 3; ++I) {
    D.beginSamplingPeriod();
    D.endSamplingPeriod();
  }
  replay(TraceBuilder().write(1, 5, 51).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstSite, 50u);
}

TEST_F(PacerDetectorTest, UnsampledFirstAccessRaceNotReported) {
  // Both accesses outside sampling periods: no metadata, no report; PACER
  // finds this race only in the r fraction of runs where the first access
  // is sampled.
  replay(TraceBuilder().fork(0, 1).write(0, 5).write(1, 5).take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(PacerDetectorTest, HappensBeforeEdgeDiscardsSampledReadViaLock) {
  // Figure 1's x: t2's sampled read is ordered (via lock 9) before t1's
  // unsampled write, so the read cannot be the last access to race with
  // anything later; PACER discards x's metadata at the write. The later
  // concurrent write by t3 races with t1's (unsampled) write only, so
  // nothing is reported -- and nothing is tracked.
  D.beginSamplingPeriod();
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .fork(0, 3)
             .acq(2, 9)
             .read(2, 5)
             .take());
  D.endSamplingPeriod();
  EXPECT_EQ(D.trackedVariableCount(), 1u);
  replay(TraceBuilder()
             .rel(2, 9)
             .acq(1, 9)
             .write(1, 5) // Ordered after the sampled read: discard.
             .rel(1, 9)
             .take());
  EXPECT_TRUE(Sink.empty());
  EXPECT_EQ(D.trackedVariableCount(), 0u);
  // t3's concurrent write truly races with t1's write, but that race's
  // first access was not sampled: PACER stays silent by design.
  replay(TraceBuilder().write(3, 5).take());
  EXPECT_TRUE(Sink.empty());
}

TEST_F(PacerDetectorTest, ConcurrentSampledReadKeptOutsideSampling) {
  // Table 4 Rule 4 non-sampling arm: a sampled read epoch that is
  // concurrent with the current read is kept, because it may still be the
  // first access of a future race.
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).fork(0, 2).read(1, 5, 51).take());
  D.endSamplingPeriod();
  // t2's unsampled concurrent read does not discard t1's epoch.
  replay(TraceBuilder().read(2, 5, 52).take());
  EXPECT_EQ(D.trackedVariableCount(), 1u);
  // A later write concurrent with t1's read reports against it.
  replay(TraceBuilder().write(2, 5, 53).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstSite, 51u);
  EXPECT_EQ(Sink.Reports[0].SecondSite, 53u);
}

TEST_F(PacerDetectorTest, NonSampledReadRemovesOnlyOwnMapEntry) {
  // Two concurrent sampled reads build a read map; t1's later unsampled
  // read discards only t1's entry (Rule 3 non-sampling), so a racing
  // write still reports against t2's surviving entry.
  D.beginSamplingPeriod();
  replay(TraceBuilder()
             .fork(0, 1)
             .fork(0, 2)
             .fork(0, 3)
             .read(1, 5, 51)
             .read(2, 5, 52)
             .take());
  D.endSamplingPeriod();
  replay(TraceBuilder().read(1, 5, 61).take());
  const ReadMap *R = D.readMapForTest(5);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->size(), 1u);
  replay(TraceBuilder().write(3, 5, 53).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstSite, 52u);
}

TEST_F(PacerDetectorTest, UnsampledWriteDiscardsVariableEntirely) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).acq(0, 9).write(0, 5).rel(0, 9).take());
  D.endSamplingPeriod();
  EXPECT_EQ(D.trackedVariableCount(), 1u);
  // An unsampled write by another thread, ordered after the sampled one
  // via the lock, supersedes it: no race, metadata discarded.
  replay(TraceBuilder().acq(1, 9).write(1, 5).rel(1, 9).take());
  EXPECT_TRUE(Sink.empty());
  EXPECT_EQ(D.trackedVariableCount(), 0u);
}

TEST_F(PacerDetectorTest, UnsampledRacingWriteReportsThenDiscards) {
  // The unsampled write both reports the sampled race and then discards
  // the metadata (it is now the last access, and it is unsampled).
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).fork(0, 2).write(1, 5, 51).take());
  D.endSamplingPeriod();
  replay(TraceBuilder().write(2, 5, 52).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(D.trackedVariableCount(), 0u);
  // A third concurrent write does not re-report the stale pair.
  replay(TraceBuilder().write(0, 5, 53).take());
  EXPECT_EQ(Sink.size(), 1u);
}

TEST_F(PacerDetectorTest, SameEpochWriteKeepsMetadata) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().write(0, 5, 50).take());
  D.endSamplingPeriod();
  // Same thread, same epoch (no increments since): Rule 5, no discard.
  replay(TraceBuilder().write(0, 5, 60).take());
  EXPECT_EQ(D.trackedVariableCount(), 1u);
  EXPECT_EQ(D.writeEpochForTest(5).tid(), 0u);
}

TEST_F(PacerDetectorTest, SampledReadRacesWithLaterUnsampledWrite) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).read(1, 5, 51).take());
  D.endSamplingPeriod();
  replay(TraceBuilder().write(0, 5, 50).take());
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_EQ(Sink.Reports[0].FirstKind, AccessKind::Read);
  EXPECT_EQ(Sink.Reports[0].FirstSite, 51u);
}

TEST_F(PacerDetectorTest, InstrumentationDisabledSkipsAccesses) {
  PacerConfig Config;
  Config.InstrumentReadsWrites = false;
  CollectingSink Sink2;
  PacerDetector SyncOnly(Sink2, Config);
  SyncOnly.beginSamplingPeriod();
  replayInto(SyncOnly,
             TraceBuilder().fork(0, 1).write(0, 5).write(1, 5).take());
  EXPECT_TRUE(Sink2.empty());
  EXPECT_EQ(SyncOnly.stats().totalWrites(), 0u);
  EXPECT_GT(SyncOnly.stats().SyncOps, 0u);
}

TEST_F(PacerDetectorTest, Table3StyleCounterClassification) {
  D.beginSamplingPeriod();
  replay(TraceBuilder().write(0, 5).read(0, 6).take());
  D.endSamplingPeriod();
  replay(TraceBuilder()
             .read(0, 6)  // Has metadata: slow path.
             .read(0, 7)  // No metadata: fast path.
             .write(0, 8) // No metadata: fast path.
             .take());
  const DetectorStats &Stats = D.stats();
  EXPECT_EQ(Stats.WriteSlowSampling, 1u);
  EXPECT_EQ(Stats.ReadSlowSampling, 1u);
  EXPECT_EQ(Stats.ReadSlowNonSampling, 1u);
  EXPECT_EQ(Stats.ReadFastNonSampling, 1u);
  EXPECT_EQ(Stats.WriteFastNonSampling, 1u);
}

TEST_F(PacerDetectorTest, ReadMapSurvivesAcrossPeriodsUntilSuperseded) {
  // A read map built during one sampling period keeps collecting entries
  // in a later one, and each entry reports independently.
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).fork(0, 2).fork(0, 3).read(1, 5, 51)
             .read(2, 5, 52).take());
  D.endSamplingPeriod();
  D.beginSamplingPeriod();
  replay(TraceBuilder().read(3, 5, 53).take()); // Third concurrent reader.
  D.endSamplingPeriod();
  const ReadMap *R = D.readMapForTest(5);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->size(), 3u);
  replay(TraceBuilder().write(0, 5, 50).take()); // Races with all three.
  EXPECT_EQ(Sink.size(), 3u);
  EXPECT_EQ(D.trackedVariableCount(), 0u) << "unsampled write discards";
}

TEST_F(PacerDetectorTest, SampledEpochUpgradedInLaterPeriod) {
  // Rule 2 sampling: a later sampled read that dominates the recorded
  // epoch replaces it (and its site), so reports name the latest reader.
  D.beginSamplingPeriod();
  replay(TraceBuilder().fork(0, 1).acq(1, 9).read(1, 5, 51).rel(1, 9)
             .take());
  D.endSamplingPeriod();
  D.beginSamplingPeriod();
  replay(TraceBuilder().acq(0, 9).read(0, 5, 60).rel(0, 9).take());
  D.endSamplingPeriod();
  const ReadMap *R = D.readMapForTest(5);
  ASSERT_NE(R, nullptr);
  ASSERT_TRUE(R->isEpoch());
  EXPECT_EQ(R->epoch().tid(), 0u);
  EXPECT_EQ(R->epochSite(), 60u);
}

TEST_F(PacerDetectorTest, DiscardMetadataDisabledKeepsEntries) {
  PacerConfig Config;
  Config.DiscardMetadata = false;
  CollectingSink Sink2;
  PacerDetector Keeper(Sink2, Config);
  Keeper.beginSamplingPeriod();
  replayInto(Keeper, TraceBuilder().fork(0, 1).acq(0, 9).write(0, 5)
                         .rel(0, 9).take());
  Keeper.endSamplingPeriod();
  // The ordered unsampled write would normally discard; the ablation
  // keeps the (stale, ordered) entry.
  replayInto(Keeper, TraceBuilder().acq(1, 9).write(1, 5).rel(1, 9).take());
  EXPECT_TRUE(Sink2.empty());
  EXPECT_EQ(Keeper.trackedVariableCount(), 1u);
}

TEST_F(PacerDetectorTest, MetadataBytesShrinkAfterDiscard) {
  D.beginSamplingPeriod();
  Trace T;
  for (VarId Var = 100; Var < 140; ++Var)
    T.push_back({ActionKind::Write, 0, Var, 7});
  replay(T);
  D.endSamplingPeriod();
  size_t During = D.liveMetadataBytes();
  // Unsampled same-thread writes discard every entry.
  // (Same epoch would keep them: force a new epoch via a sampled period
  // boundary increment first.)
  D.beginSamplingPeriod();
  D.endSamplingPeriod();
  replay(T);
  EXPECT_EQ(D.trackedVariableCount(), 0u);
  EXPECT_LT(D.liveMetadataBytes(), During);
}

} // namespace
