//===- tests/detectors/LiteRaceDetectorTest.cpp ---------------------------==//

#include "detectors/LiteRaceDetector.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pacer;
using namespace pacer::test;

namespace {

/// Sites 0..9 map to method 0; sites 10..19 to method 1; etc.
std::vector<MethodId> tenSitesPerMethod(uint32_t Methods) {
  std::vector<MethodId> Map;
  for (MethodId Method = 0; Method < Methods; ++Method)
    for (int I = 0; I < 10; ++I)
      Map.push_back(Method);
  return Map;
}

TEST(LiteRaceDetectorTest, DetectsRaceInColdCode) {
  CollectingSink Sink;
  LiteRaceDetector D(Sink, tenSitesPerMethod(4), /*Seed=*/1);
  replayInto(D, TraceBuilder().fork(0, 1).write(0, 5, 30).write(1, 5, 31)
                    .take());
  EXPECT_EQ(Sink.size(), 1u);
}

TEST(LiteRaceDetectorTest, FirstBurstAnalysesEverything) {
  CollectingSink Sink;
  LiteRaceConfig Config;
  Config.BurstLength = 100;
  LiteRaceDetector D(Sink, tenSitesPerMethod(1), 1, Config);
  Trace T;
  for (int I = 0; I < 100; ++I)
    T.push_back({ActionKind::Read, 0, 5, 3});
  replayInto(D, T);
  EXPECT_DOUBLE_EQ(D.effectiveRate(), 1.0);
}

TEST(LiteRaceDetectorTest, HotMethodRateDecays) {
  CollectingSink Sink;
  LiteRaceConfig Config;
  Config.BurstLength = 50;
  LiteRaceDetector D(Sink, tenSitesPerMethod(1), 1, Config);
  Trace T;
  for (int I = 0; I < 200000; ++I)
    T.push_back({ActionKind::Read, 0, 5, 3});
  replayInto(D, T);
  // After many bursts the per-method rate bottoms out at MinRate (0.1%);
  // the overall effective rate must approach it (allowing early bursts).
  EXPECT_LT(D.effectiveRate(), 0.05);
  EXPECT_GT(D.effectiveRate(), 0.0005);
}

TEST(LiteRaceDetectorTest, SamplersArePerMethodAndThread) {
  CollectingSink Sink;
  LiteRaceConfig Config;
  Config.BurstLength = 10;
  LiteRaceDetector D(Sink, tenSitesPerMethod(2), 1, Config);
  // Exhaust method 0's sampler for thread 0.
  Trace Hot;
  for (int I = 0; I < 5000; ++I)
    Hot.push_back({ActionKind::Read, 0, 5, /*Site=*/3});
  replayInto(D, Hot);
  uint64_t SkippedBefore = D.stats().ReadFastNonSampling;
  EXPECT_GT(SkippedBefore, 0u) << "hot method-thread pair must skip";
  // A different method (site 13) and a different thread start fresh:
  // their first burst analyses everything.
  Trace Fresh = TraceBuilder().fork(0, 1).take();
  for (int I = 0; I < 9; ++I)
    Fresh.push_back({ActionKind::Read, 0, 6, /*Site=*/13});
  for (int I = 0; I < 9; ++I)
    Fresh.push_back({ActionKind::Read, 1, 7, /*Site=*/3});
  replayInto(D, Fresh);
  uint64_t SkippedAfter = D.stats().ReadFastNonSampling;
  EXPECT_EQ(SkippedAfter, SkippedBefore)
      << "fresh method-thread pairs are fully sampled initially";
}

TEST(LiteRaceDetectorTest, MissesRaceWhenAccessesNotSampled) {
  // Make the racy accesses land deep in the skip region of a hot method.
  CollectingSink Sink;
  LiteRaceConfig Config;
  Config.BurstLength = 10;
  Config.MinRate = 0.001;
  LiteRaceDetector D(Sink, tenSitesPerMethod(1), 1, Config);
  Trace T = TraceBuilder().fork(0, 1).take();
  // Heat up the method on both threads.
  for (int I = 0; I < 50000; ++I) {
    T.push_back({ActionKind::Read, 0, 100, 3});
    T.push_back({ActionKind::Read, 1, 101, 4});
  }
  // Plant a clear write-write race in the now-cold-sampled hot method.
  T.push_back({ActionKind::Write, 0, 5, 5});
  T.push_back({ActionKind::Write, 1, 5, 6});
  // A little more traffic.
  for (int I = 0; I < 100; ++I)
    T.push_back({ActionKind::Read, 0, 100, 3});
  replayInto(D, T);
  EXPECT_TRUE(Sink.empty())
      << "both racy accesses fall in skip regions: the race is missed";
}

TEST(LiteRaceDetectorTest, SyncAlwaysTracked) {
  CollectingSink Sink;
  LiteRaceConfig Config;
  Config.BurstLength = 10;
  LiteRaceDetector D(Sink, tenSitesPerMethod(1), 1, Config);
  // Exhaust sampling, then rely on lock ordering: if sync were sampled,
  // this would false-positive... it must stay race free AND the ordered
  // accesses inside bursts must never report.
  Trace T = TraceBuilder().fork(0, 1).take();
  for (int I = 0; I < 2000; ++I)
    T.push_back({ActionKind::Read, 0, 100, 3});
  Trace Ordered = TraceBuilder()
                      .acq(0, 9)
                      .write(0, 5, 5)
                      .rel(0, 9)
                      .acq(1, 9)
                      .write(1, 5, 6)
                      .rel(1, 9)
                      .take();
  T.insert(T.end(), Ordered.begin(), Ordered.end());
  replayInto(D, T);
  EXPECT_TRUE(Sink.empty());
  EXPECT_GT(D.stats().SyncOps, 0u);
}

TEST(LiteRaceDetectorTest, NeverDiscardsMetadata) {
  CollectingSink Sink;
  LiteRaceDetector D(Sink, tenSitesPerMethod(1), 1);
  Trace T;
  for (VarId Var = 0; Var < 100; ++Var)
    T.push_back({ActionKind::Write, 0, Var, 3});
  replayInto(D, T);
  size_t After = D.liveMetadataBytes();
  // More writes to the same variables do not shrink anything.
  replayInto(D, T);
  EXPECT_GE(D.liveMetadataBytes(), After);
  EXPECT_GT(After, 100 * sizeof(Epoch));
}

TEST(LiteRaceDetectorTest, EffectiveRateCountsReadsAndWrites) {
  CollectingSink Sink;
  LiteRaceConfig Config;
  Config.BurstLength = 10;
  LiteRaceDetector D(Sink, tenSitesPerMethod(1), 1, Config);
  Trace T;
  for (int I = 0; I < 10000; ++I)
    T.push_back({I % 2 ? ActionKind::Read : ActionKind::Write, 0, 5, 3});
  replayInto(D, T);
  double Rate = D.effectiveRate();
  EXPECT_GT(Rate, 0.0);
  EXPECT_LT(Rate, 1.0);
}

TEST(LiteRaceDetectorTest, RandomizedResetVariesAcrossSeeds) {
  // Total sampled counts can coincide across seeds (same number of
  // bursts fit); the *positions* of the bursts must differ, which is
  // what lets different trials catch different races. Fingerprint the
  // sampled-access positions.
  auto Fingerprint = [](uint64_t Seed) {
    CollectingSink Sink;
    LiteRaceConfig Config;
    Config.BurstLength = 10;
    LiteRaceDetector D(Sink, tenSitesPerMethod(1), Seed, Config);
    uint64_t Hash = 0;
    uint64_t Before = 0;
    for (uint64_t I = 0; I < 30000; ++I) {
      D.read(0, 5, 3);
      uint64_t After = D.stats().ReadSlowSampling;
      if (After != Before)
        Hash = Hash * 1099511628211ULL + I;
      Before = After;
    }
    return Hash;
  };
  EXPECT_NE(Fingerprint(1), Fingerprint(2))
      << "randomized skip counters differentiate trials";
}

TEST(LiteRaceDetectorTest, SitesBeyondMapGetOwnMethod) {
  CollectingSink Sink;
  LiteRaceDetector D(Sink, tenSitesPerMethod(1), 1);
  // Site 500 is beyond the 10-entry map; must not crash and must analyse.
  replayInto(D,
             TraceBuilder().fork(0, 1).write(0, 5, 500).write(1, 5, 501)
                 .take());
  EXPECT_EQ(Sink.size(), 1u);
}

} // namespace
