//===- tests/detectors/RecyclingEquivalenceTest.cpp -----------------------==//
//
// The contract ISSUE 6 ships on: for every detector, every shard count,
// and both sharded-replay engines, the races a trial reports are exactly
// the same with accordion thread-slot recycling on and off -- recycling
// only discards metadata that domination proves can never start a race.
// On top of the equality matrix, the space claim: with recycling on, the
// peak slot count never exceeds the off run's (and on thread-churn
// workloads is strictly smaller).
//
// Sweeps stay deliberately small (tiny/forkjoin workloads, two seeds):
// the matrix is detectors {generic, fasttrack, pacer, literace} x shards
// {1, 4} x engine {full-scan, index} x recycling {off, on}.
//
//===----------------------------------------------------------------------===//

#include "harness/TrialRunner.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace pacer;

namespace {

struct NamedSetup {
  std::string Name;
  DetectorSetup Setup;
};

std::vector<NamedSetup> detectorSetups() {
  // A mid-range sampling rate with small periods exercises PACER's
  // discard path alongside recycling; the controller's decisions depend
  // only on the seed and event sizes, so they are recycling-invariant.
  DetectorSetup Pacer = pacerSetup(0.4);
  Pacer.Sampling.PeriodBytes = 8 * 1024;
  return {{"generic", genericSetup()},
          {"fasttrack", fastTrackSetup()},
          {"pacer", Pacer},
          {"literace", literaceSetup(500)}};
}

/// The fields recycling must not change. Stats counters (join fast/slow
/// splits, clock allocations) legitimately differ -- recycling exists to
/// change those -- so equality is over the reported races.
void expectSameRaces(const TrialResult &A, const TrialResult &B,
                     const std::string &What) {
  EXPECT_EQ(A.Races, B.Races) << What;
  EXPECT_EQ(A.DynamicRaces, B.DynamicRaces) << What;
  EXPECT_EQ(A.TraceEvents, B.TraceEvents) << What;
}

} // namespace

TEST(RecyclingEquivalenceTest, ReportsIdenticalAcrossDetectorsShardsEngines) {
  for (const WorkloadSpec &Spec :
       {tinyTestWorkload(), forkJoinModelWithTasks(60)}) {
    CompiledWorkload Workload(Spec);
    for (uint64_t Seed : {1ull, 9ull}) {
      Trace T = generateTrace(Workload, Seed);
      for (const NamedSetup &NS : detectorSetups()) {
        for (unsigned Shards : {1u, 4u}) {
          for (bool UseIndex : {false, true}) {
            const std::string What = Spec.Name + "/" + NS.Name +
                                     "/shards=" + std::to_string(Shards) +
                                     (UseIndex ? "/index" : "/scan") +
                                     "/seed=" + std::to_string(Seed);
            DetectorSetup Off = NS.Setup;
            Off.Shards = Shards;
            Off.ShardUseIndex = UseIndex;
            DetectorSetup On = Off;
            On.AccordionClocks = true;

            TrialResult OffResult = runTrialOnTrace(T, Workload, Off, Seed);
            TrialResult OnResult = runTrialOnTrace(T, Workload, On, Seed);
            expectSameRaces(OffResult, OnResult, What);
            EXPECT_LE(OnResult.PeakSlotCount, OffResult.PeakSlotCount)
                << What;
          }
        }
      }
    }
  }
}

TEST(RecyclingEquivalenceTest, RecyclingOnMatchesSequentialAcrossEngines) {
  // With recycling on, every engine/shard combination must also agree
  // with the sequential replay -- recycling decisions are a pure function
  // of the sync prefix, which all replicas share.
  CompiledWorkload Workload(forkJoinModelWithTasks(60));
  Trace T = generateTrace(Workload, 5);
  for (const NamedSetup &NS : detectorSetups()) {
    DetectorSetup Sequential = NS.Setup;
    Sequential.AccordionClocks = true;
    Sequential.Shards = 1;
    TrialResult Baseline = runTrialOnTrace(T, Workload, Sequential, 5);
    for (unsigned Shards : {2u, 4u}) {
      for (bool UseIndex : {false, true}) {
        DetectorSetup Setup = Sequential;
        Setup.Shards = Shards;
        Setup.ShardUseIndex = UseIndex;
        TrialResult Sharded = runTrialOnTrace(T, Workload, Setup, 5);
        expectSameRaces(Baseline, Sharded,
                        NS.Name + "/shards=" + std::to_string(Shards) +
                            (UseIndex ? "/index" : "/scan"));
        // Replica 0 sees the identical sync stream, so even the peak slot
        // count is engine- and shard-invariant.
        EXPECT_EQ(Sharded.PeakSlotCount, Baseline.PeakSlotCount) << NS.Name;
      }
    }
  }
}

TEST(RecyclingEquivalenceTest, ThreadChurnShrinksPeakSlots) {
  // On the fork/join family the bound is strict: hundreds of tasks, a
  // fixed live cap, so recycling must hold the peak far below the total.
  CompiledWorkload Workload(forkJoinModelWithTasks(100));
  Trace T = generateTrace(Workload, 2);
  for (const NamedSetup &NS : detectorSetups()) {
    DetectorSetup Off = NS.Setup;
    DetectorSetup On = Off;
    On.AccordionClocks = true;
    TrialResult OffResult = runTrialOnTrace(T, Workload, Off, 2);
    TrialResult OnResult = runTrialOnTrace(T, Workload, On, 2);
    EXPECT_EQ(OffResult.PeakSlotCount, Workload.totalThreads()) << NS.Name;
    EXPECT_LT(OnResult.PeakSlotCount, OffResult.PeakSlotCount / 2)
        << NS.Name << ": recycling must bound slots by live threads";
  }
}
