//===- examples/bank_transfer.cpp - Atomicity-violation scenario ----------==//
//
// The paper motivates race detection with concurrency bugs like atomicity
// violations. This example models a small bank: teller threads transfer
// money between lock-protected accounts, but an "audit" thread reads
// balances WITHOUT locking -- a write-read race that corrupts audits only
// under rare interleavings. We generate many randomized executions and
// show PACER at a deployable 3% rate accumulating the race across runs,
// exactly the paper's many-deployed-instances story.
//
//===----------------------------------------------------------------------===//

#include "detectors/PacerDetector.h"
#include "runtime/RaceLog.h"
#include "runtime/Runtime.h"
#include "sim/Scheduler.h"
#include "support/Rng.h"

#include <cstdio>

using namespace pacer;

namespace {

constexpr uint32_t NumAccounts = 8;
constexpr uint32_t NumTellers = 4;
constexpr SiteId TransferSite = 100, AuditSite = 200;

VarId accountBalance(uint32_t Account) { return Account; }
LockId accountLock(uint32_t Account) { return Account; }

/// Teller: repeatedly locks two accounts (in ascending order -- no
/// deadlock) and moves money.
ThreadScript tellerScript(ThreadId Tid, Rng &Random) {
  ThreadScript Script;
  Script.Tid = Tid;
  for (int Transfer = 0; Transfer < 60; ++Transfer) {
    uint32_t A = static_cast<uint32_t>(Random.nextBelow(NumAccounts));
    uint32_t B = static_cast<uint32_t>(Random.nextBelow(NumAccounts - 1));
    if (B >= A)
      ++B;
    uint32_t Lo = std::min(A, B), Hi = std::max(A, B);
    Script.Ops.push_back({ActionKind::Acquire, Tid, accountLock(Lo), 0});
    Script.Ops.push_back({ActionKind::Acquire, Tid, accountLock(Hi), 0});
    for (uint32_t Account : {Lo, Hi}) {
      Script.Ops.push_back(
          {ActionKind::Read, Tid, accountBalance(Account), TransferSite});
      Script.Ops.push_back(
          {ActionKind::Write, Tid, accountBalance(Account), TransferSite});
    }
    Script.Ops.push_back({ActionKind::Release, Tid, accountLock(Hi), 0});
    Script.Ops.push_back({ActionKind::Release, Tid, accountLock(Lo), 0});
  }
  Script.Ops.push_back({ActionKind::ThreadExit, Tid, InvalidId, InvalidId});
  return Script;
}

/// Auditor: sums balances without taking locks. The read of each balance
/// races with tellers' writes.
ThreadScript auditorScript(ThreadId Tid) {
  ThreadScript Script;
  Script.Tid = Tid;
  for (int Pass = 0; Pass < 20; ++Pass)
    for (uint32_t Account = 0; Account < NumAccounts; ++Account)
      Script.Ops.push_back(
          {ActionKind::Read, Tid, accountBalance(Account), AuditSite});
  Script.Ops.push_back({ActionKind::ThreadExit, Tid, InvalidId, InvalidId});
  return Script;
}

Trace makeExecution(uint64_t Seed) {
  Rng Random(Seed);
  std::vector<ThreadScript> Scripts;
  ThreadScript MainScript;
  MainScript.Tid = 0;
  for (ThreadId Tid = 1; Tid <= NumTellers + 1; ++Tid)
    MainScript.Ops.push_back({ActionKind::Fork, 0, Tid, 0});
  for (ThreadId Tid = 1; Tid <= NumTellers + 1; ++Tid)
    MainScript.Ops.push_back({ActionKind::Join, 0, Tid, 0});
  MainScript.Ops.push_back({ActionKind::ThreadExit, 0, InvalidId, InvalidId});
  Scripts.push_back(MainScript);
  for (ThreadId Tid = 1; Tid <= NumTellers; ++Tid)
    Scripts.push_back(tellerScript(Tid, Random));
  Scripts.push_back(auditorScript(NumTellers + 1));
  Scheduler Sched(std::move(Scripts), Random.split());
  return Sched.run();
}

} // namespace

int main() {
  std::printf("Bank-transfer atomicity violation\n"
              "=================================\n\n");

  // Ground truth on one execution with full tracking.
  {
    RaceLog Log;
    PacerDetector D(Log);
    D.beginSamplingPeriod();
    Runtime RT(D);
    RT.replay(makeExecution(1));
    std::printf("Full tracking finds %zu distinct race(s); sample "
                "report:\n  %s\n\n",
                Log.distinctCount(),
                Log.sampleReports().empty()
                    ? "(none)"
                    : Log.sampleReports()[0].str().c_str());
  }

  // Deployed story: PACER at 3% across many runs.
  const double Rate = 0.03;
  const int Runs = 600;
  int RunsReporting = 0;
  for (int Run = 0; Run < Runs; ++Run) {
    RaceLog Log;
    PacerDetector D(Log);
    SamplingConfig Config;
    Config.TargetRate = Rate;
    Config.PeriodBytes = 4 * 1024; // Short program: small periods.
    SamplingController Controller(Config, 1000 + Run);
    Runtime RT(D, &Controller);
    RT.replay(makeExecution(1000 + Run));
    if (Log.saw(RaceKey{TransferSite, AuditSite}))
      ++RunsReporting;
  }
  std::printf("PACER at r=%.0f%%: the audit race was reported in %d/%d "
              "runs (%.1f%%) -- above the 3%% per-occurrence rate because "
              "the audit loop races many times per run, giving PACER "
              "several chances per trial.\nEvery deployed run pays only "
              "the ~3%% sampling cost, yet across the fleet the bug "
              "surfaces reliably.\n",
              Rate * 100, RunsReporting, Runs,
              100.0 * RunsReporting / Runs);
  return 0;
}
