//===- examples/deployed_fleet.cpp - Distributed debugging at scale -------==//
//
// The paper envisions PACER "in a distributed debugging paradigm where
// many deployed instances sample bug-finding instrumentation to increase
// the chances of finding rare bugs" (Section 1). This example simulates a
// fleet of deployed instances of the eclipse workload model, each running
// PACER at 2%, aggregates their reports with FleetAggregator, and shows:
//
//  * fleet-wide race coverage growing with the number of instances while
//    each instance's cost stays flat;
//  * per-race occurrence-rate estimates recovered from detection counts
//    via the proportionality guarantee (detections ≈ k * o * r);
//  * the fleet-size calculator: how many instances you need to find a
//    race of a given rarity with a given confidence.
//
//===----------------------------------------------------------------------===//

#include "harness/DetectionExperiment.h"
#include "harness/TrialRunner.h"
#include "runtime/FleetAggregator.h"
#include "sim/Workloads.h"
#include "support/Table.h"

#include <cstdio>
#include <set>

using namespace pacer;

int main() {
  std::printf("Deployed-fleet distributed debugging\n"
              "====================================\n\n");

  WorkloadSpec Spec = scaleWorkload(eclipseModel(), 0.1);
  CompiledWorkload Workload(Spec);

  // What is there to find? Calibrate with fully sampled runs.
  GroundTruth Truth = computeGroundTruth(Workload, 15, 1);
  std::set<RaceKey> Findable;
  for (const RaceOccurrence &Race : Truth.EvaluationRaces)
    Findable.insert(Race.Key);
  std::printf("Evaluation races (occur in >= half of full runs): %zu\n\n",
              Findable.size());

  // Deploy: each instance is one user's run with a fresh seed.
  const double Rate = 0.02;
  DetectorSetup Setup = pacerSetup(Rate);
  Setup.Sampling.PeriodBytes = 12 * 1024; // Many periods per run.
  const int FleetSize = 400;

  FleetAggregator Fleet(Rate);
  std::set<RaceKey> FleetFound;
  int Milestone = 25;
  std::printf("fleet size -> evaluation races found (cumulative)\n");
  for (int Instance = 1; Instance <= FleetSize; ++Instance) {
    TrialResult Result =
        runTrial(Workload, Setup, 50000 + static_cast<uint64_t>(Instance));
    // In a real deployment each instance ships its RaceLog; reconstruct
    // one from the trial's aggregate counts.
    RaceLog Log;
    for (const auto &[Key, Count] : Result.Races) {
      RaceReport Report;
      Report.FirstSite = Key.FirstSite;
      Report.SecondSite = Key.SecondSite;
      for (uint64_t I = 0; I < Count; ++I)
        Log.onRace(Report);
    }
    Fleet.addInstance(Log, Result.EffectiveAccessRate);
    for (const auto &[Key, Count] : Result.Races)
      if (Findable.count(Key))
        FleetFound.insert(Key);
    if (Instance == Milestone || Instance == FleetSize) {
      std::printf("  %4d instances: %zu/%zu\n", Instance, FleetFound.size(),
                  Findable.size());
      Milestone *= 2;
    }
  }

  // What the aggregator can tell the developer.
  std::printf("\nTop races by estimated per-run occurrence "
              "(detections / (instances * rate)):\n");
  TextTable Table;
  Table.setHeader({"race (sites)", "instances reporting", "est. occurrence",
                   "95% CI on detection"});
  std::vector<FleetRaceInfo> Summary = Fleet.summarize();
  for (size_t I = 0; I < Summary.size() && I < 6; ++I) {
    const FleetRaceInfo &Info = Summary[I];
    Table.addRow({std::to_string(Info.Key.FirstSite) + "," +
                      std::to_string(Info.Key.SecondSite),
                  std::to_string(Info.InstancesReporting) + "/" +
                      std::to_string(Fleet.instanceCount()),
                  formatPercent(Info.EstimatedOccurrence, 0),
                  "[" + formatPercent(Info.DetectionCI.Low, 1) + ", " +
                      formatPercent(Info.DetectionCI.High, 1) + "]"});
  }
  std::printf("%s", Table.render().c_str());

  std::printf("\nMean effective sampling rate: %s (target %s).\n",
              formatPercent(Fleet.meanEffectiveRate(), 2).c_str(),
              formatPercent(Rate, 0).c_str());
  std::printf("Fleet sizing at this rate: a race occurring in every run "
              "needs %u instances for 95%% confidence; a 1-in-20 race "
              "needs %u; a 1-in-1000 race needs %u.\n",
              Fleet.fleetSizeFor(1.0, 0.95), Fleet.fleetSizeFor(0.05, 0.95),
              Fleet.fleetSizeFor(0.001, 0.95));
  std::printf("No single user pays more than the sampling-rate overhead, "
              "yet the fleet pins down even rare races.\n");
  return 0;
}
