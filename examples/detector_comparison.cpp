//===- examples/detector_comparison.cpp - Four algorithms, one trace ------==//
//
// Replays one identical execution of the xalan workload model through all
// four detectors -- GENERIC (O(n) vector clocks), FastTrack, PACER at
// 100%, and online LiteRace -- and compares what they report, what they
// count, how much metadata they keep, and how long analysis takes.
//
//===----------------------------------------------------------------------===//

#include "harness/TrialRunner.h"
#include "sim/TraceGenerator.h"
#include "sim/Workloads.h"
#include "support/Table.h"

#include <cstdio>

using namespace pacer;

int main() {
  std::printf("Detector comparison on one execution\n"
              "====================================\n\n");

  WorkloadSpec Spec = scaleWorkload(xalanModel(), 0.15);
  CompiledWorkload Workload(Spec);
  Trace T = generateTrace(Workload, 7);
  TraceProfile Profile = profileTrace(T);
  std::printf("Execution: %llu events (%llu reads, %llu writes, %llu sync "
              "ops; %.1f%% sync)\n\n",
              static_cast<unsigned long long>(Profile.Total),
              static_cast<unsigned long long>(Profile.Reads),
              static_cast<unsigned long long>(Profile.Writes),
              static_cast<unsigned long long>(Profile.SyncOps),
              100.0 * Profile.syncFraction());

  struct Entry {
    const char *Label;
    DetectorSetup Setup;
  };
  DetectorSetup SampledPacer = pacerSetup(0.10);
  SampledPacer.Sampling.PeriodBytes = 12 * 1024; // Many short periods.
  std::vector<Entry> Entries{
      {"GENERIC", genericSetup()},
      {"FastTrack", fastTrackSetup()},
      {"PACER r=100%", pacerSetup(1.0)},
      {"PACER r=10%", SampledPacer},
      {"LiteRace", literaceSetup(10)},
  };

  TextTable Table;
  Table.setHeader({"Detector", "distinct races", "dynamic reports",
                   "metadata KB", "replay ms", "slow joins"});
  double BaselineMs = 0.0;
  for (const Entry &E : Entries) {
    TrialResult Result = runTrialOnTrace(T, Workload, E.Setup, 7);
    if (BaselineMs == 0.0)
      BaselineMs = Result.ReplaySeconds * 1000.0;
    uint64_t SlowJoins = Result.Stats.SlowJoinsSampling +
                         Result.Stats.SlowJoinsNonSampling;
    Table.addRow({E.Label, std::to_string(Result.Races.size()),
                  std::to_string(Result.DynamicRaces),
                  std::to_string(Result.FinalMetadataBytes / 1024),
                  formatDouble(Result.ReplaySeconds * 1000.0, 1),
                  std::to_string(SlowJoins)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf(
      "Things to notice:\n"
      " * FastTrack and PACER at 100%% report identical races; GENERIC\n"
      "   agrees on which executions are racy.\n"
      " * Sampled PACER reports a sample of the races but keeps metadata\n"
      "   and slow joins near zero -- that is the paper's entire point.\n"
      " * LiteRace misses hot races and its metadata matches full\n"
      "   tracking (it samples code, not data).\n");
  return 0;
}
