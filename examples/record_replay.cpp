//===- examples/record_replay.cpp - Offline analysis workflow -------------==//
//
// The record/replay workflow the paper contrasts PACER against: LiteRace
// "uses offline race detection by recording synchronization, read, and
// write operations to a log file" (Section 2.3). This example records an
// execution of the pseudojbb model to a trace file, then re-analyses the
// SAME execution offline with three detectors -- something impossible in
// live deployments (you cannot rewind production), which is exactly why
// PACER's online, deployment-cheap detection matters.
//
// Usage: record_replay [trace-file]   (default: /tmp/pacer_recorded.btrace)
//
//===----------------------------------------------------------------------===//

#include "harness/TrialRunner.h"
#include "sim/StreamingTraceReader.h"
#include "sim/TraceGenerator.h"
#include "sim/TraceIO.h"
#include "sim/Workloads.h"

#include <cstdio>

using namespace pacer;

int main(int Argc, char **Argv) {
  std::printf("Record once, analyse offline\n"
              "============================\n\n");

  std::string Path =
      Argc > 1 ? Argv[1] : std::string("/tmp/pacer_recorded.btrace");

  // --- Record: one execution of the workload, logged to disk in the
  // binary v2 format (12 bytes per action; readTraceFile and the
  // streaming reader auto-detect the format either way). ---
  WorkloadSpec Spec = scaleWorkload(pseudojbbModel(), 0.2);
  CompiledWorkload Workload(Spec);
  Trace Live = generateTrace(Workload, 42);
  if (!writeTraceFile(Path, Live, TraceFormat::Binary)) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return 1;
  }
  TraceProfile Profile = profileTrace(Live);
  std::printf("Recorded %llu actions (%llu sync ops) to %s\n\n",
              static_cast<unsigned long long>(Profile.Total),
              static_cast<unsigned long long>(Profile.SyncOps),
              Path.c_str());

  // --- Replay: load the log and run detectors after the fact. ---
  TraceParseResult Parsed = readTraceFile(Path);
  if (!Parsed.Ok) {
    std::fprintf(stderr, "error: %s\n", Parsed.Error.c_str());
    return 1;
  }

  struct Entry {
    const char *Label;
    DetectorSetup Setup;
  };
  for (const Entry &E :
       {Entry{"FastTrack (full)", fastTrackSetup()},
        Entry{"PACER r=100%", pacerSetup(1.0)},
        Entry{"GENERIC", genericSetup()}}) {
    TrialResult Result = runTrialOnTrace(Parsed.T, Workload, E.Setup, 42);
    std::printf("%-18s %zu distinct race(s), %llu dynamic report(s)\n",
                E.Label, Result.Races.size(),
                static_cast<unsigned long long>(Result.DynamicRaces));
  }

  // --- Stream: the same analysis without ever materializing the trace.
  // A bounded window (here 4096 actions, ~48 KiB) flows through the
  // detector; the result is bit-identical to the in-memory replay. ---
  StreamingTraceReader Reader(Path, 4096);
  std::string Error;
  TrialResult Streamed =
      runTrialOnStream(Reader, Workload, fastTrackSetup(), 42, &Error);
  if (!Error.empty()) {
    std::fprintf(stderr, "error: %s\n", Error.c_str());
    return 1;
  }
  std::printf("%-18s %zu distinct race(s), %llu dynamic report(s)"
              "  (window: 4096 actions)\n",
              "FastTrack streamed", Streamed.Races.size(),
              static_cast<unsigned long long>(Streamed.DynamicRaces));

  std::printf("\nAll four runs agree on the recorded execution. The catch: "
              "recording costs I/O per\naccess and the log must exist "
              "before anything can be analysed -- PACER instead\nanalyses "
              "online at a tunable fraction of the cost, which is what "
              "makes it\ndeployable where recording is not.\n");
  return 0;
}
