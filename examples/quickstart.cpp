//===- examples/quickstart.cpp - Five-minute tour of the API --------------==//
//
// Instruments a tiny two-thread program by hand, the way a compiler pass
// would, and shows (1) PACER finding the race when the first access is
// sampled, and (2) the proportionality guarantee: at a 25% sampling rate
// the race is reported in about a quarter of the runs.
//
// Build and run:  ./quickstart
//
//===----------------------------------------------------------------------===//

#include "detectors/PacerDetector.h"
#include "runtime/RaceLog.h"
#include "support/Rng.h"

#include <cstdio>

using namespace pacer;

namespace {

// Program entities: two threads, one lock, two shared variables.
constexpr ThreadId Main = 0, Worker = 1;
constexpr LockId CounterLock = 0;
constexpr VarId Counter = 0, Flag = 1;

// Program sites (in a real deployment: file/line of each access).
constexpr SiteId MainWritesFlag = 10, WorkerReadsFlag = 11,
                 CounterSite = 12;

/// The "program": main increments a lock-protected counter and then sets
/// an UNPROTECTED flag that the worker reads -- a classic data race.
void runProgram(Detector &D) {
  D.fork(Main, Worker);

  // Properly synchronized counter update by both threads: never races.
  D.acquire(Main, CounterLock);
  D.read(Main, Counter, CounterSite);
  D.write(Main, Counter, CounterSite);
  D.release(Main, CounterLock);

  D.write(Main, Flag, MainWritesFlag); // BUG: no lock held.

  D.acquire(Worker, CounterLock);
  D.read(Worker, Counter, CounterSite);
  D.write(Worker, Counter, CounterSite);
  D.release(Worker, CounterLock);

  D.read(Worker, Flag, WorkerReadsFlag); // BUG: races with main's write.

  D.join(Main, Worker);
}

} // namespace

int main() {
  std::printf("PACER quickstart\n================\n\n");

  // --- 1. Full sampling: PACER behaves exactly like FastTrack. ---
  {
    RaceLog Log;
    PacerDetector D(Log);
    D.beginSamplingPeriod(); // Sample everything.
    runProgram(D);
    std::printf("With sampling on, PACER reports %llu race(s):\n",
                static_cast<unsigned long long>(Log.dynamicCount()));
    for (const RaceReport &Report : Log.sampleReports())
      std::printf("  %s\n", Report.str().c_str());
  }

  // --- 2. Sampling at 25%: detected in about a quarter of runs. ---
  {
    const int Runs = 400;
    const double Rate = 0.25;
    Rng Random(42);
    int Detected = 0;
    for (int Run = 0; Run < Runs; ++Run) {
      RaceLog Log;
      PacerDetector D(Log);
      // One global sampling decision per run (real deployments toggle at
      // GC boundaries; this program is shorter than one period).
      bool Sampled = Random.nextBool(Rate);
      if (Sampled)
        D.beginSamplingPeriod();
      runProgram(D);
      if (Log.dynamicCount() > 0)
        ++Detected;
    }
    std::printf("\nAt a %.0f%% sampling rate, the race was reported in "
                "%d/%d runs (%.1f%%) -- detection is proportional to the "
                "sampling rate, not its square.\n",
                Rate * 100, Detected, Runs, 100.0 * Detected / Runs);
  }

  // --- 3. Zero rate: zero overhead paths, zero metadata. ---
  {
    RaceLog Log;
    PacerDetector D(Log);
    runProgram(D); // Never sampling.
    std::printf("\nAt r=0%%: %llu reports, %zu tracked variables, %llu "
                "fast-path accesses (the inlined check is all you pay).\n",
                static_cast<unsigned long long>(Log.dynamicCount()),
                D.trackedVariableCount(),
                static_cast<unsigned long long>(
                    D.stats().ReadFastNonSampling +
                    D.stats().WriteFastNonSampling));
  }
  return 0;
}
