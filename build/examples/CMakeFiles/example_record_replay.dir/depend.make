# Empty dependencies file for example_record_replay.
# This may be replaced when dependencies are built.
