file(REMOVE_RECURSE
  "CMakeFiles/example_deployed_fleet.dir/deployed_fleet.cpp.o"
  "CMakeFiles/example_deployed_fleet.dir/deployed_fleet.cpp.o.d"
  "deployed_fleet"
  "deployed_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_deployed_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
