# Empty compiler generated dependencies file for example_deployed_fleet.
# This may be replaced when dependencies are built.
