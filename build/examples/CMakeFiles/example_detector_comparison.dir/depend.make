# Empty dependencies file for example_detector_comparison.
# This may be replaced when dependencies are built.
