file(REMOVE_RECURSE
  "CMakeFiles/example_detector_comparison.dir/detector_comparison.cpp.o"
  "CMakeFiles/example_detector_comparison.dir/detector_comparison.cpp.o.d"
  "detector_comparison"
  "detector_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_detector_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
