# Empty dependencies file for pacer_runtime.
# This may be replaced when dependencies are built.
