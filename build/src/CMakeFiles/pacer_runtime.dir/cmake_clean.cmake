file(REMOVE_RECURSE
  "CMakeFiles/pacer_runtime.dir/runtime/FleetAggregator.cpp.o"
  "CMakeFiles/pacer_runtime.dir/runtime/FleetAggregator.cpp.o.d"
  "CMakeFiles/pacer_runtime.dir/runtime/RaceLog.cpp.o"
  "CMakeFiles/pacer_runtime.dir/runtime/RaceLog.cpp.o.d"
  "CMakeFiles/pacer_runtime.dir/runtime/Runtime.cpp.o"
  "CMakeFiles/pacer_runtime.dir/runtime/Runtime.cpp.o.d"
  "CMakeFiles/pacer_runtime.dir/runtime/SamplingController.cpp.o"
  "CMakeFiles/pacer_runtime.dir/runtime/SamplingController.cpp.o.d"
  "libpacer_runtime.a"
  "libpacer_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacer_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
