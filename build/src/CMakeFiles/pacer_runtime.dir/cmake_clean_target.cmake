file(REMOVE_RECURSE
  "libpacer_runtime.a"
)
