file(REMOVE_RECURSE
  "CMakeFiles/pacer_sim.dir/sim/Action.cpp.o"
  "CMakeFiles/pacer_sim.dir/sim/Action.cpp.o.d"
  "CMakeFiles/pacer_sim.dir/sim/Scheduler.cpp.o"
  "CMakeFiles/pacer_sim.dir/sim/Scheduler.cpp.o.d"
  "CMakeFiles/pacer_sim.dir/sim/ScriptBuilder.cpp.o"
  "CMakeFiles/pacer_sim.dir/sim/ScriptBuilder.cpp.o.d"
  "CMakeFiles/pacer_sim.dir/sim/TraceGenerator.cpp.o"
  "CMakeFiles/pacer_sim.dir/sim/TraceGenerator.cpp.o.d"
  "CMakeFiles/pacer_sim.dir/sim/TraceIO.cpp.o"
  "CMakeFiles/pacer_sim.dir/sim/TraceIO.cpp.o.d"
  "CMakeFiles/pacer_sim.dir/sim/WorkloadSpec.cpp.o"
  "CMakeFiles/pacer_sim.dir/sim/WorkloadSpec.cpp.o.d"
  "CMakeFiles/pacer_sim.dir/sim/Workloads.cpp.o"
  "CMakeFiles/pacer_sim.dir/sim/Workloads.cpp.o.d"
  "libpacer_sim.a"
  "libpacer_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacer_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
