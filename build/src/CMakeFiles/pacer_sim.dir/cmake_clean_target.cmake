file(REMOVE_RECURSE
  "libpacer_sim.a"
)
