
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Action.cpp" "src/CMakeFiles/pacer_sim.dir/sim/Action.cpp.o" "gcc" "src/CMakeFiles/pacer_sim.dir/sim/Action.cpp.o.d"
  "/root/repo/src/sim/Scheduler.cpp" "src/CMakeFiles/pacer_sim.dir/sim/Scheduler.cpp.o" "gcc" "src/CMakeFiles/pacer_sim.dir/sim/Scheduler.cpp.o.d"
  "/root/repo/src/sim/ScriptBuilder.cpp" "src/CMakeFiles/pacer_sim.dir/sim/ScriptBuilder.cpp.o" "gcc" "src/CMakeFiles/pacer_sim.dir/sim/ScriptBuilder.cpp.o.d"
  "/root/repo/src/sim/TraceGenerator.cpp" "src/CMakeFiles/pacer_sim.dir/sim/TraceGenerator.cpp.o" "gcc" "src/CMakeFiles/pacer_sim.dir/sim/TraceGenerator.cpp.o.d"
  "/root/repo/src/sim/TraceIO.cpp" "src/CMakeFiles/pacer_sim.dir/sim/TraceIO.cpp.o" "gcc" "src/CMakeFiles/pacer_sim.dir/sim/TraceIO.cpp.o.d"
  "/root/repo/src/sim/WorkloadSpec.cpp" "src/CMakeFiles/pacer_sim.dir/sim/WorkloadSpec.cpp.o" "gcc" "src/CMakeFiles/pacer_sim.dir/sim/WorkloadSpec.cpp.o.d"
  "/root/repo/src/sim/Workloads.cpp" "src/CMakeFiles/pacer_sim.dir/sim/Workloads.cpp.o" "gcc" "src/CMakeFiles/pacer_sim.dir/sim/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
