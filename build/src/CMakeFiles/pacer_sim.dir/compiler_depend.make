# Empty compiler generated dependencies file for pacer_sim.
# This may be replaced when dependencies are built.
