
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detectors/Detector.cpp" "src/CMakeFiles/pacer_detectors.dir/detectors/Detector.cpp.o" "gcc" "src/CMakeFiles/pacer_detectors.dir/detectors/Detector.cpp.o.d"
  "/root/repo/src/detectors/FastTrackDetector.cpp" "src/CMakeFiles/pacer_detectors.dir/detectors/FastTrackDetector.cpp.o" "gcc" "src/CMakeFiles/pacer_detectors.dir/detectors/FastTrackDetector.cpp.o.d"
  "/root/repo/src/detectors/GenericDetector.cpp" "src/CMakeFiles/pacer_detectors.dir/detectors/GenericDetector.cpp.o" "gcc" "src/CMakeFiles/pacer_detectors.dir/detectors/GenericDetector.cpp.o.d"
  "/root/repo/src/detectors/LiteRaceDetector.cpp" "src/CMakeFiles/pacer_detectors.dir/detectors/LiteRaceDetector.cpp.o" "gcc" "src/CMakeFiles/pacer_detectors.dir/detectors/LiteRaceDetector.cpp.o.d"
  "/root/repo/src/detectors/PacerDetector.cpp" "src/CMakeFiles/pacer_detectors.dir/detectors/PacerDetector.cpp.o" "gcc" "src/CMakeFiles/pacer_detectors.dir/detectors/PacerDetector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
