# Empty compiler generated dependencies file for pacer_detectors.
# This may be replaced when dependencies are built.
