file(REMOVE_RECURSE
  "libpacer_detectors.a"
)
