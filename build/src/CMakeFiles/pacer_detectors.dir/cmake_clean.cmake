file(REMOVE_RECURSE
  "CMakeFiles/pacer_detectors.dir/detectors/Detector.cpp.o"
  "CMakeFiles/pacer_detectors.dir/detectors/Detector.cpp.o.d"
  "CMakeFiles/pacer_detectors.dir/detectors/FastTrackDetector.cpp.o"
  "CMakeFiles/pacer_detectors.dir/detectors/FastTrackDetector.cpp.o.d"
  "CMakeFiles/pacer_detectors.dir/detectors/GenericDetector.cpp.o"
  "CMakeFiles/pacer_detectors.dir/detectors/GenericDetector.cpp.o.d"
  "CMakeFiles/pacer_detectors.dir/detectors/LiteRaceDetector.cpp.o"
  "CMakeFiles/pacer_detectors.dir/detectors/LiteRaceDetector.cpp.o.d"
  "CMakeFiles/pacer_detectors.dir/detectors/PacerDetector.cpp.o"
  "CMakeFiles/pacer_detectors.dir/detectors/PacerDetector.cpp.o.d"
  "libpacer_detectors.a"
  "libpacer_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacer_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
