# Empty compiler generated dependencies file for pacer_support.
# This may be replaced when dependencies are built.
