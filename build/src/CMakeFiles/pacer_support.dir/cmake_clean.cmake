file(REMOVE_RECURSE
  "CMakeFiles/pacer_support.dir/support/CommandLine.cpp.o"
  "CMakeFiles/pacer_support.dir/support/CommandLine.cpp.o.d"
  "CMakeFiles/pacer_support.dir/support/Error.cpp.o"
  "CMakeFiles/pacer_support.dir/support/Error.cpp.o.d"
  "CMakeFiles/pacer_support.dir/support/Rng.cpp.o"
  "CMakeFiles/pacer_support.dir/support/Rng.cpp.o.d"
  "CMakeFiles/pacer_support.dir/support/Stats.cpp.o"
  "CMakeFiles/pacer_support.dir/support/Stats.cpp.o.d"
  "CMakeFiles/pacer_support.dir/support/Table.cpp.o"
  "CMakeFiles/pacer_support.dir/support/Table.cpp.o.d"
  "libpacer_support.a"
  "libpacer_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacer_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
