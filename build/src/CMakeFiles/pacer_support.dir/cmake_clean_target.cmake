file(REMOVE_RECURSE
  "libpacer_support.a"
)
