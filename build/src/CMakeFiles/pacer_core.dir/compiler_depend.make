# Empty compiler generated dependencies file for pacer_core.
# This may be replaced when dependencies are built.
