file(REMOVE_RECURSE
  "CMakeFiles/pacer_core.dir/core/RaceReport.cpp.o"
  "CMakeFiles/pacer_core.dir/core/RaceReport.cpp.o.d"
  "CMakeFiles/pacer_core.dir/core/ReadMap.cpp.o"
  "CMakeFiles/pacer_core.dir/core/ReadMap.cpp.o.d"
  "CMakeFiles/pacer_core.dir/core/SyncClock.cpp.o"
  "CMakeFiles/pacer_core.dir/core/SyncClock.cpp.o.d"
  "CMakeFiles/pacer_core.dir/core/VectorClock.cpp.o"
  "CMakeFiles/pacer_core.dir/core/VectorClock.cpp.o.d"
  "libpacer_core.a"
  "libpacer_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacer_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
