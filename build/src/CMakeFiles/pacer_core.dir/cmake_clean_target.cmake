file(REMOVE_RECURSE
  "libpacer_core.a"
)
