
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/RaceReport.cpp" "src/CMakeFiles/pacer_core.dir/core/RaceReport.cpp.o" "gcc" "src/CMakeFiles/pacer_core.dir/core/RaceReport.cpp.o.d"
  "/root/repo/src/core/ReadMap.cpp" "src/CMakeFiles/pacer_core.dir/core/ReadMap.cpp.o" "gcc" "src/CMakeFiles/pacer_core.dir/core/ReadMap.cpp.o.d"
  "/root/repo/src/core/SyncClock.cpp" "src/CMakeFiles/pacer_core.dir/core/SyncClock.cpp.o" "gcc" "src/CMakeFiles/pacer_core.dir/core/SyncClock.cpp.o.d"
  "/root/repo/src/core/VectorClock.cpp" "src/CMakeFiles/pacer_core.dir/core/VectorClock.cpp.o" "gcc" "src/CMakeFiles/pacer_core.dir/core/VectorClock.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
