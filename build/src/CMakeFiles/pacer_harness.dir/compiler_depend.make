# Empty compiler generated dependencies file for pacer_harness.
# This may be replaced when dependencies are built.
