file(REMOVE_RECURSE
  "CMakeFiles/pacer_harness.dir/harness/DetectionExperiment.cpp.o"
  "CMakeFiles/pacer_harness.dir/harness/DetectionExperiment.cpp.o.d"
  "CMakeFiles/pacer_harness.dir/harness/OverheadExperiment.cpp.o"
  "CMakeFiles/pacer_harness.dir/harness/OverheadExperiment.cpp.o.d"
  "CMakeFiles/pacer_harness.dir/harness/SpaceExperiment.cpp.o"
  "CMakeFiles/pacer_harness.dir/harness/SpaceExperiment.cpp.o.d"
  "CMakeFiles/pacer_harness.dir/harness/TrialRunner.cpp.o"
  "CMakeFiles/pacer_harness.dir/harness/TrialRunner.cpp.o.d"
  "libpacer_harness.a"
  "libpacer_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pacer_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
