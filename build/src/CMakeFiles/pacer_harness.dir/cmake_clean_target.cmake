file(REMOVE_RECURSE
  "libpacer_harness.a"
)
