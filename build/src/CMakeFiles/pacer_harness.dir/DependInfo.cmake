
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/DetectionExperiment.cpp" "src/CMakeFiles/pacer_harness.dir/harness/DetectionExperiment.cpp.o" "gcc" "src/CMakeFiles/pacer_harness.dir/harness/DetectionExperiment.cpp.o.d"
  "/root/repo/src/harness/OverheadExperiment.cpp" "src/CMakeFiles/pacer_harness.dir/harness/OverheadExperiment.cpp.o" "gcc" "src/CMakeFiles/pacer_harness.dir/harness/OverheadExperiment.cpp.o.d"
  "/root/repo/src/harness/SpaceExperiment.cpp" "src/CMakeFiles/pacer_harness.dir/harness/SpaceExperiment.cpp.o" "gcc" "src/CMakeFiles/pacer_harness.dir/harness/SpaceExperiment.cpp.o.d"
  "/root/repo/src/harness/TrialRunner.cpp" "src/CMakeFiles/pacer_harness.dir/harness/TrialRunner.cpp.o" "gcc" "src/CMakeFiles/pacer_harness.dir/harness/TrialRunner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
