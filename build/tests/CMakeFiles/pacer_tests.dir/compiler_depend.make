# Empty compiler generated dependencies file for pacer_tests.
# This may be replaced when dependencies are built.
