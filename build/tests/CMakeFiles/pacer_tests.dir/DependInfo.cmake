
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/ClockAlgebraTest.cpp" "tests/CMakeFiles/pacer_tests.dir/core/ClockAlgebraTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/core/ClockAlgebraTest.cpp.o.d"
  "/root/repo/tests/core/EpochTest.cpp" "tests/CMakeFiles/pacer_tests.dir/core/EpochTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/core/EpochTest.cpp.o.d"
  "/root/repo/tests/core/RaceReportTest.cpp" "tests/CMakeFiles/pacer_tests.dir/core/RaceReportTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/core/RaceReportTest.cpp.o.d"
  "/root/repo/tests/core/ReadMapTest.cpp" "tests/CMakeFiles/pacer_tests.dir/core/ReadMapTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/core/ReadMapTest.cpp.o.d"
  "/root/repo/tests/core/SyncClockTest.cpp" "tests/CMakeFiles/pacer_tests.dir/core/SyncClockTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/core/SyncClockTest.cpp.o.d"
  "/root/repo/tests/core/VectorClockTest.cpp" "tests/CMakeFiles/pacer_tests.dir/core/VectorClockTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/core/VectorClockTest.cpp.o.d"
  "/root/repo/tests/core/VersionEpochTest.cpp" "tests/CMakeFiles/pacer_tests.dir/core/VersionEpochTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/core/VersionEpochTest.cpp.o.d"
  "/root/repo/tests/detectors/AccordionClockTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/AccordionClockTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/AccordionClockTest.cpp.o.d"
  "/root/repo/tests/detectors/DetectorEquivalenceTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/DetectorEquivalenceTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/DetectorEquivalenceTest.cpp.o.d"
  "/root/repo/tests/detectors/FastTrackDetectorTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/FastTrackDetectorTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/FastTrackDetectorTest.cpp.o.d"
  "/root/repo/tests/detectors/GenericDetectorTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/GenericDetectorTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/GenericDetectorTest.cpp.o.d"
  "/root/repo/tests/detectors/LiteRaceDetectorTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/LiteRaceDetectorTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/LiteRaceDetectorTest.cpp.o.d"
  "/root/repo/tests/detectors/PacerDetectorTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/PacerDetectorTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/PacerDetectorTest.cpp.o.d"
  "/root/repo/tests/detectors/PacerSamplingTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/PacerSamplingTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/PacerSamplingTest.cpp.o.d"
  "/root/repo/tests/detectors/VolatileSemanticsTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/VolatileSemanticsTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/VolatileSemanticsTest.cpp.o.d"
  "/root/repo/tests/detectors/WellFormednessTest.cpp" "tests/CMakeFiles/pacer_tests.dir/detectors/WellFormednessTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/detectors/WellFormednessTest.cpp.o.d"
  "/root/repo/tests/harness/DetectionExperimentTest.cpp" "tests/CMakeFiles/pacer_tests.dir/harness/DetectionExperimentTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/harness/DetectionExperimentTest.cpp.o.d"
  "/root/repo/tests/harness/OverheadExperimentTest.cpp" "tests/CMakeFiles/pacer_tests.dir/harness/OverheadExperimentTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/harness/OverheadExperimentTest.cpp.o.d"
  "/root/repo/tests/harness/SpaceExperimentTest.cpp" "tests/CMakeFiles/pacer_tests.dir/harness/SpaceExperimentTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/harness/SpaceExperimentTest.cpp.o.d"
  "/root/repo/tests/harness/TrialRunnerTest.cpp" "tests/CMakeFiles/pacer_tests.dir/harness/TrialRunnerTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/harness/TrialRunnerTest.cpp.o.d"
  "/root/repo/tests/integration/EndToEndTest.cpp" "tests/CMakeFiles/pacer_tests.dir/integration/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/integration/EndToEndTest.cpp.o.d"
  "/root/repo/tests/integration/PrecisionTest.cpp" "tests/CMakeFiles/pacer_tests.dir/integration/PrecisionTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/integration/PrecisionTest.cpp.o.d"
  "/root/repo/tests/integration/ProportionalityTest.cpp" "tests/CMakeFiles/pacer_tests.dir/integration/ProportionalityTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/integration/ProportionalityTest.cpp.o.d"
  "/root/repo/tests/integration/StressTest.cpp" "tests/CMakeFiles/pacer_tests.dir/integration/StressTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/integration/StressTest.cpp.o.d"
  "/root/repo/tests/runtime/FleetAggregatorTest.cpp" "tests/CMakeFiles/pacer_tests.dir/runtime/FleetAggregatorTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/runtime/FleetAggregatorTest.cpp.o.d"
  "/root/repo/tests/runtime/RaceLogTest.cpp" "tests/CMakeFiles/pacer_tests.dir/runtime/RaceLogTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/runtime/RaceLogTest.cpp.o.d"
  "/root/repo/tests/runtime/RuntimeTest.cpp" "tests/CMakeFiles/pacer_tests.dir/runtime/RuntimeTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/runtime/RuntimeTest.cpp.o.d"
  "/root/repo/tests/runtime/SamplingControllerTest.cpp" "tests/CMakeFiles/pacer_tests.dir/runtime/SamplingControllerTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/runtime/SamplingControllerTest.cpp.o.d"
  "/root/repo/tests/sim/SchedulerTest.cpp" "tests/CMakeFiles/pacer_tests.dir/sim/SchedulerTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/sim/SchedulerTest.cpp.o.d"
  "/root/repo/tests/sim/ScriptBuilderTest.cpp" "tests/CMakeFiles/pacer_tests.dir/sim/ScriptBuilderTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/sim/ScriptBuilderTest.cpp.o.d"
  "/root/repo/tests/sim/TraceIOTest.cpp" "tests/CMakeFiles/pacer_tests.dir/sim/TraceIOTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/sim/TraceIOTest.cpp.o.d"
  "/root/repo/tests/sim/WorkloadTest.cpp" "tests/CMakeFiles/pacer_tests.dir/sim/WorkloadTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/sim/WorkloadTest.cpp.o.d"
  "/root/repo/tests/support/CommandLineTest.cpp" "tests/CMakeFiles/pacer_tests.dir/support/CommandLineTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/support/CommandLineTest.cpp.o.d"
  "/root/repo/tests/support/RngTest.cpp" "tests/CMakeFiles/pacer_tests.dir/support/RngTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/support/RngTest.cpp.o.d"
  "/root/repo/tests/support/StatsTest.cpp" "tests/CMakeFiles/pacer_tests.dir/support/StatsTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/support/StatsTest.cpp.o.d"
  "/root/repo/tests/support/TableTest.cpp" "tests/CMakeFiles/pacer_tests.dir/support/TableTest.cpp.o" "gcc" "tests/CMakeFiles/pacer_tests.dir/support/TableTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacer_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
