# Empty dependencies file for fig5_per_race_detection.
# This may be replaced when dependencies are built.
