# Empty compiler generated dependencies file for fig6_literace_eclipse.
# This may be replaced when dependencies are built.
