file(REMOVE_RECURSE
  "CMakeFiles/fig6_literace_eclipse.dir/bench/fig6_literace_eclipse.cpp.o"
  "CMakeFiles/fig6_literace_eclipse.dir/bench/fig6_literace_eclipse.cpp.o.d"
  "bench/fig6_literace_eclipse"
  "bench/fig6_literace_eclipse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_literace_eclipse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
