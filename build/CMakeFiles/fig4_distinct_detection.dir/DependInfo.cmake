
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_distinct_detection.cpp" "CMakeFiles/fig4_distinct_detection.dir/bench/fig4_distinct_detection.cpp.o" "gcc" "CMakeFiles/fig4_distinct_detection.dir/bench/fig4_distinct_detection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pacer_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_detectors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pacer_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
