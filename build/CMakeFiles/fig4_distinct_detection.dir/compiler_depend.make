# Empty compiler generated dependencies file for fig4_distinct_detection.
# This may be replaced when dependencies are built.
