file(REMOVE_RECURSE
  "CMakeFiles/fig4_distinct_detection.dir/bench/fig4_distinct_detection.cpp.o"
  "CMakeFiles/fig4_distinct_detection.dir/bench/fig4_distinct_detection.cpp.o.d"
  "bench/fig4_distinct_detection"
  "bench/fig4_distinct_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_distinct_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
