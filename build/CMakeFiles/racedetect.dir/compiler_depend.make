# Empty compiler generated dependencies file for racedetect.
# This may be replaced when dependencies are built.
