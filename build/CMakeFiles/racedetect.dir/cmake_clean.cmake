file(REMOVE_RECURSE
  "CMakeFiles/racedetect.dir/tools/racedetect.cpp.o"
  "CMakeFiles/racedetect.dir/tools/racedetect.cpp.o.d"
  "tools/racedetect"
  "tools/racedetect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/racedetect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
