# Empty dependencies file for table1_effective_rates.
# This may be replaced when dependencies are built.
