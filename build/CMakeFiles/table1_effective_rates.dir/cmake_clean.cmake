file(REMOVE_RECURSE
  "CMakeFiles/table1_effective_rates.dir/bench/table1_effective_rates.cpp.o"
  "CMakeFiles/table1_effective_rates.dir/bench/table1_effective_rates.cpp.o.d"
  "bench/table1_effective_rates"
  "bench/table1_effective_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_effective_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
