# Empty dependencies file for fig3_dynamic_detection.
# This may be replaced when dependencies are built.
