file(REMOVE_RECURSE
  "CMakeFiles/fig3_dynamic_detection.dir/bench/fig3_dynamic_detection.cpp.o"
  "CMakeFiles/fig3_dynamic_detection.dir/bench/fig3_dynamic_detection.cpp.o.d"
  "bench/fig3_dynamic_detection"
  "bench/fig3_dynamic_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dynamic_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
