file(REMOVE_RECURSE
  "CMakeFiles/table2_thread_race_counts.dir/bench/table2_thread_race_counts.cpp.o"
  "CMakeFiles/table2_thread_race_counts.dir/bench/table2_thread_race_counts.cpp.o.d"
  "bench/table2_thread_race_counts"
  "bench/table2_thread_race_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_thread_race_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
