# Empty compiler generated dependencies file for table2_thread_race_counts.
# This may be replaced when dependencies are built.
