file(REMOVE_RECURSE
  "CMakeFiles/table3_operation_counts.dir/bench/table3_operation_counts.cpp.o"
  "CMakeFiles/table3_operation_counts.dir/bench/table3_operation_counts.cpp.o.d"
  "bench/table3_operation_counts"
  "bench/table3_operation_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_operation_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
