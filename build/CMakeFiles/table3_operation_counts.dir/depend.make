# Empty dependencies file for table3_operation_counts.
# This may be replaced when dependencies are built.
