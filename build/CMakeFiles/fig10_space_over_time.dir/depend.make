# Empty dependencies file for fig10_space_over_time.
# This may be replaced when dependencies are built.
