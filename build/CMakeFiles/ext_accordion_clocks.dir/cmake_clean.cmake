file(REMOVE_RECURSE
  "CMakeFiles/ext_accordion_clocks.dir/bench/ext_accordion_clocks.cpp.o"
  "CMakeFiles/ext_accordion_clocks.dir/bench/ext_accordion_clocks.cpp.o.d"
  "bench/ext_accordion_clocks"
  "bench/ext_accordion_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_accordion_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
