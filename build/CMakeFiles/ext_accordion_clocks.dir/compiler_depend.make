# Empty compiler generated dependencies file for ext_accordion_clocks.
# This may be replaced when dependencies are built.
