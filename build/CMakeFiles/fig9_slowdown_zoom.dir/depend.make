# Empty dependencies file for fig9_slowdown_zoom.
# This may be replaced when dependencies are built.
