file(REMOVE_RECURSE
  "CMakeFiles/fig9_slowdown_zoom.dir/bench/fig9_slowdown_zoom.cpp.o"
  "CMakeFiles/fig9_slowdown_zoom.dir/bench/fig9_slowdown_zoom.cpp.o.d"
  "bench/fig9_slowdown_zoom"
  "bench/fig9_slowdown_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_slowdown_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
