# Empty dependencies file for fig8_slowdown_full_range.
# This may be replaced when dependencies are built.
