file(REMOVE_RECURSE
  "CMakeFiles/fig8_slowdown_full_range.dir/bench/fig8_slowdown_full_range.cpp.o"
  "CMakeFiles/fig8_slowdown_full_range.dir/bench/fig8_slowdown_full_range.cpp.o.d"
  "bench/fig8_slowdown_full_range"
  "bench/fig8_slowdown_full_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_slowdown_full_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
