file(REMOVE_RECURSE
  "CMakeFiles/fig7_overhead_breakdown.dir/bench/fig7_overhead_breakdown.cpp.o"
  "CMakeFiles/fig7_overhead_breakdown.dir/bench/fig7_overhead_breakdown.cpp.o.d"
  "bench/fig7_overhead_breakdown"
  "bench/fig7_overhead_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overhead_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
